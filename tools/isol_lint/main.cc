/**
 * @file
 * isol_lint CLI: scan src/, bench/, and tools/ for determinism (D),
 * sharding-safety (P), and unit-safety (U) hazards — see lint.hh.
 *
 * Usage:
 *   isol_lint [--root DIR] [--rules D,P,U] [--jobs N] [--cache FILE]
 *             [--sarif FILE] [--report-unused-suppressions]
 *             [--github] [--verbose] [--list-rules] [file...]
 *
 * With explicit files, lints exactly those. Otherwise walks
 * <root>/{src,bench,tools} for *.cc / *.hh, skipping the known-bad
 * fixture corpus under tools/isol_lint/fixtures/.
 *
 * --cache FILE keeps the repo-wide lint sub-second in the ctest hot
 * loop: when nothing changed (by mtime+size, falling back to content
 * digests so a touch without an edit still hits), the previous run's
 * result is replayed without re-running the rule engine. The rules
 * are whole-program, so the cache is valid only for the tree as a
 * whole — any content change re-lints everything.
 *
 * Exit status: 0 when clean, 1 on any unsuppressed finding (or, with
 * --report-unused-suppressions, on any stale allow() comment), 2 on
 * usage or I/O errors. `--github` switches to GitHub Actions
 * annotation format (`::error file=...`) for CI.
 */

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cache.hh"
#include "lint.hh"

namespace fs = std::filesystem;
using isol_lint::Finding;

namespace
{

bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

bool
lintableExtension(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".h" ||
           ext == ".hpp";
}

/** Path relative to root when under it, with forward slashes. */
std::string
displayPath(const fs::path &path, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(path, root, ec);
    fs::path shown = (ec || rel.empty() || *rel.begin() == "..")
                         ? path
                         : rel;
    return shown.generic_string();
}

std::vector<fs::path>
collectFiles(const fs::path &root)
{
    std::vector<fs::path> files;
    for (const char *dir : {"src", "bench", "tools"}) {
        fs::path base = root / dir;
        if (!fs::is_directory(base))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file() ||
                !lintableExtension(entry.path()))
                continue;
            if (entry.path().generic_string().find(
                    "isol_lint/fixtures") != std::string::npos)
                continue;
            files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

void
printFinding(const Finding &f, bool github, const char *kind)
{
    const bool error = kind == nullptr;
    if (github) {
        std::printf("::%s file=%s,line=%d::[%s] %s\n",
                    error ? "error" : "notice", f.file.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());
        return;
    }
    std::printf("%s:%d: %s%s[%s] %s\n", f.file.c_str(), f.line,
                error ? "" : kind, error ? "" : " ", f.rule.c_str(),
                f.message.c_str());
    if (error)
        std::printf("    hint: %s\n", f.hint.c_str());
}

/** Parse --rules: families as letters, commas/spaces ignored. */
bool
parseFamilies(const std::string &arg, std::set<char> &out)
{
    out.clear();
    for (char c : arg) {
        if (c == ',' || c == ' ')
            continue;
        char up = static_cast<char>(std::toupper(
            static_cast<unsigned char>(c)));
        if (up != 'D' && up != 'P' && up != 'U')
            return false;
        out.insert(up);
    }
    return !out.empty();
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    bool github = false;
    bool verbose = false;
    bool report_unused = false;
    std::string cache_path;
    std::string sarif_path;
    isol_lint::LintOptions options;
    options.jobs = std::min(8u, std::max(
        1u, std::thread::hardware_concurrency()));
    std::vector<fs::path> explicit_files;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "isol_lint: %s needs a value\n",
                             flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--github") {
            github = true;
        } else if (arg == "--verbose" || arg == "-v") {
            verbose = true;
        } else if (arg == "--report-unused-suppressions") {
            report_unused = true;
        } else if (arg == "--root") {
            const char *v = value("--root");
            if (v == nullptr)
                return 2;
            root = v;
        } else if (arg == "--rules") {
            const char *v = value("--rules");
            if (v == nullptr || !parseFamilies(v, options.families)) {
                std::fprintf(stderr,
                             "isol_lint: --rules wants families from "
                             "{D,P,U}, e.g. --rules D,P,U\n");
                return 2;
            }
        } else if (arg == "--jobs" || arg == "-j") {
            const char *v = value("--jobs");
            if (v == nullptr)
                return 2;
            options.jobs = static_cast<unsigned>(
                std::max(1, std::atoi(v)));
        } else if (arg == "--cache") {
            const char *v = value("--cache");
            if (v == nullptr)
                return 2;
            cache_path = v;
        } else if (arg == "--sarif") {
            const char *v = value("--sarif");
            if (v == nullptr)
                return 2;
            sarif_path = v;
        } else if (arg == "--list-rules") {
            for (const isol_lint::RuleInfo &r : isol_lint::ruleTable()) {
                std::printf("%s  %s\n    fix: %s\n", r.id, r.summary,
                            r.hint);
            }
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: isol_lint [--root DIR] [--rules D,P,U] "
                "[--jobs N] [--cache FILE] [--sarif FILE]\n"
                "                 [--report-unused-suppressions] "
                "[--github] [--verbose] [--list-rules] [file...]\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "isol_lint: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        } else {
            explicit_files.emplace_back(arg);
        }
    }

    std::vector<fs::path> files =
        explicit_files.empty() ? collectFiles(root) : explicit_files;
    if (files.empty()) {
        std::fprintf(stderr, "isol_lint: no input files under %s\n",
                     root.string().c_str());
        return 2;
    }

    // Stat pass first: a stat-clean cache replays the previous result
    // without reading a single source file.
    std::vector<isol_lint::FileStat> stats;
    stats.reserve(files.size());
    for (const fs::path &path : files) {
        std::error_code ec;
        isol_lint::FileStat s;
        s.path = displayPath(path, root);
        s.size = fs::file_size(path, ec);
        if (!ec) {
            auto mtime = fs::last_write_time(path, ec);
            s.mtime_ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    mtime.time_since_epoch())
                    .count();
        }
        if (ec) {
            std::fprintf(stderr, "isol_lint: cannot stat %s\n",
                         path.string().c_str());
            return 2;
        }
        stats.push_back(std::move(s));
    }

    const unsigned long long tool_digest =
        isol_lint::toolDigest(options);
    isol_lint::LintCache cache;
    bool cache_loaded =
        !cache_path.empty() && isol_lint::loadCache(cache_path, cache);

    isol_lint::LintResult result;
    const char *cache_state = "off";
    if (cache_loaded &&
        isol_lint::statHit(cache, tool_digest, stats)) {
        result = cache.result;
        cache_state = "hit";
    } else {
        std::vector<isol_lint::FileInput> inputs;
        inputs.reserve(files.size());
        for (size_t i = 0; i < files.size(); ++i) {
            std::string content;
            if (!readFile(files[i], content)) {
                std::fprintf(stderr, "isol_lint: cannot read %s\n",
                             files[i].string().c_str());
                return 2;
            }
            inputs.push_back({stats[i].path, std::move(content)});
        }
        if (cache_loaded &&
            isol_lint::digestHit(cache, tool_digest, inputs)) {
            // Touch without edit: replay, refresh the stored mtimes so
            // the next probe hits on stat alone.
            result = cache.result;
            cache_state = "hit";
            isol_lint::saveCache(
                cache_path, isol_lint::makeCache(tool_digest, stats,
                                                 inputs, result));
        } else {
            result = isol_lint::lintFiles(inputs, options);
            cache_state = cache_path.empty() ? "off" : "miss";
            if (!cache_path.empty()) {
                isol_lint::saveCache(
                    cache_path, isol_lint::makeCache(tool_digest, stats,
                                                     inputs, result));
            }
        }
    }

    for (const Finding &f : result.findings)
        printFinding(f, github, nullptr);
    if (verbose) {
        for (const Finding &f : result.suppressed)
            printFinding(f, github, "suppressed");
    }
    if (report_unused) {
        for (const Finding &f : result.unused_suppressions)
            printFinding(f, github, "stale-suppression");
    }

    if (!sarif_path.empty()) {
        std::ofstream out(sarif_path, std::ios::trunc);
        out << isol_lint::sarifReport(result);
        if (!out) {
            std::fprintf(stderr, "isol_lint: cannot write %s\n",
                         sarif_path.c_str());
            return 2;
        }
    }

    std::string families;
    for (char f : options.families)
        families += f;
    std::fprintf(stderr,
                 "isol_lint: %zu files, families %s, %zu findings "
                 "(%zu suppressed, %zu stale suppressions), cache %s\n",
                 files.size(), families.c_str(), result.findings.size(),
                 result.suppressed.size(),
                 result.unused_suppressions.size(), cache_state);
    bool failed = !result.findings.empty() ||
                  (report_unused && !result.unused_suppressions.empty());
    return failed ? 1 : 0;
}
