/**
 * @file
 * isol_lint CLI: scan src/, bench/, and tools/ for determinism and
 * simulation-hygiene hazards (rules D1..D5, see lint.hh).
 *
 * Usage:
 *   isol_lint [--root DIR] [--github] [--verbose] [--list-rules] [file...]
 *
 * With explicit files, lints exactly those. Otherwise walks
 * <root>/{src,bench,tools} for *.cc / *.hh, skipping the known-bad
 * fixture corpus under tools/isol_lint/fixtures/.
 *
 * Exit status: 0 when clean, 1 on any unsuppressed finding, 2 on usage
 * or I/O errors. `--github` switches to GitHub Actions annotation
 * format (`::error file=...`) for CI.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hh"

namespace fs = std::filesystem;
using isol_lint::Finding;

namespace
{

bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

bool
lintableExtension(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".h" ||
           ext == ".hpp";
}

/** Path relative to root when under it, with forward slashes. */
std::string
displayPath(const fs::path &path, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(path, root, ec);
    fs::path shown = (ec || rel.empty() || *rel.begin() == "..")
                         ? path
                         : rel;
    return shown.generic_string();
}

std::vector<fs::path>
collectFiles(const fs::path &root)
{
    std::vector<fs::path> files;
    for (const char *dir : {"src", "bench", "tools"}) {
        fs::path base = root / dir;
        if (!fs::is_directory(base))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file() ||
                !lintableExtension(entry.path()))
                continue;
            if (entry.path().generic_string().find(
                    "isol_lint/fixtures") != std::string::npos)
                continue;
            files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

void
printFinding(const Finding &f, bool github, bool suppressed)
{
    if (github) {
        std::printf("::%s file=%s,line=%d::[%s] %s\n",
                    suppressed ? "notice" : "error", f.file.c_str(),
                    f.line, f.rule.c_str(), f.message.c_str());
        return;
    }
    std::printf("%s:%d: %s[%s] %s\n", f.file.c_str(), f.line,
                suppressed ? "suppressed " : "", f.rule.c_str(),
                f.message.c_str());
    if (!suppressed)
        std::printf("    hint: %s\n", f.hint.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    bool github = false;
    bool verbose = false;
    std::vector<fs::path> explicit_files;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--github") {
            github = true;
        } else if (arg == "--verbose" || arg == "-v") {
            verbose = true;
        } else if (arg == "--root") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "isol_lint: --root needs a value\n");
                return 2;
            }
            root = argv[++i];
        } else if (arg == "--list-rules") {
            for (const isol_lint::RuleInfo &r : isol_lint::ruleTable()) {
                std::printf("%s  %s\n    fix: %s\n", r.id, r.summary,
                            r.hint);
            }
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: isol_lint [--root DIR] [--github] "
                        "[--verbose] [--list-rules] [file...]\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "isol_lint: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        } else {
            explicit_files.emplace_back(arg);
        }
    }

    std::vector<fs::path> files =
        explicit_files.empty() ? collectFiles(root) : explicit_files;
    if (files.empty()) {
        std::fprintf(stderr, "isol_lint: no input files under %s\n",
                     root.string().c_str());
        return 2;
    }

    std::vector<isol_lint::FileInput> inputs;
    inputs.reserve(files.size());
    for (const fs::path &path : files) {
        std::string content;
        if (!readFile(path, content)) {
            std::fprintf(stderr, "isol_lint: cannot read %s\n",
                         path.string().c_str());
            return 2;
        }
        inputs.push_back({displayPath(path, root), std::move(content)});
    }

    isol_lint::LintResult result = isol_lint::lintFiles(inputs);
    for (const Finding &f : result.findings)
        printFinding(f, github, false);
    if (verbose) {
        for (const Finding &f : result.suppressed)
            printFinding(f, github, true);
    }

    std::fprintf(stderr,
                 "isol_lint: %zu files, %zu findings (%zu suppressed)\n",
                 inputs.size(), result.findings.size(),
                 result.suppressed.size());
    return result.findings.empty() ? 0 : 1;
}
