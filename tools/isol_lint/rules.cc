/**
 * @file
 * Rule engine for isol-lint: D1..D5 over the token stream.
 *
 * Rules work on a comment-free token view per file; suppressions and
 * `// isol: parallel` region markers are extracted from the comment
 * tokens first. D1 runs in two passes across the whole file set so a
 * container declared in a header is matched against iteration in any
 * .cc file.
 */

#include "lint.hh"

#include <algorithm>
#include <map>
#include <set>

namespace isol_lint
{

namespace
{

// --- Rule metadata ----------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"D1",
     "pointer-keyed unordered container (iteration order = heap-address "
     "order)",
     "iterate an index-mapped creation-order deque instead (see "
     "src/blk/bfq.cc); keep pointer-keyed maps lookup-only and document "
     "with allow(D1)"},
    {"D2",
     "wall-clock or ambient-entropy source outside src/common/rng.hh",
     "derive all randomness from the scenario's seeded isol::Rng and all "
     "time from Simulator::now(); profiling clocks go through "
     "sweep::monotonicMs()"},
    {"D3",
     "pointer-value ordering comparison in a comparator",
     "compare a stable field (id, creation index) instead of the "
     "pointers themselves"},
    {"D4",
     "mutable namespace-scope or static state in src/",
     "make it const/constexpr or move it into per-run state owned by "
     "the Scenario; sweep-engine infrastructure may allow(D4) with "
     "justification"},
    {"D5",
     "float accumulation into pre-region state inside a parallel region",
     "collect per-index partial results and fold them after the "
     "parallel section, in index order (see runFairness in "
     "src/isolbench/d2_fairness.cc)"},
};

const RuleInfo &
rule(const char *id)
{
    for (const RuleInfo &r : kRules) {
        if (std::string(r.id) == id)
            return r;
    }
    return kRules.front();
}

// --- Per-file pre-processing ------------------------------------------

/** Inclusive line range suppressing one rule (or "*" for all). */
struct Suppression
{
    int first_line;
    int last_line;
    std::string rule; //!< rule id, or "*"
};

/** Token range (code-token indexes) of one `// isol: parallel` region. */
struct Region
{
    size_t begin; //!< index of the opening `{`
    size_t end; //!< index of the matching `}`
};

struct FileView
{
    std::string path;
    std::vector<Token> code; //!< comment-free tokens
    std::vector<Suppression> suppressions;
    std::vector<Region> regions;
};

bool
pathHasSrcComponent(const std::string &path)
{
    return path.rfind("src/", 0) == 0 ||
           path.find("/src/") != std::string::npos;
}

bool
pathIsRngHeader(const std::string &path)
{
    const std::string suffix = "common/rng.hh";
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

/** Parse `isol-lint: allow(D1, D2)` occurrences out of a comment. */
void
parseAllows(const std::string &text, int first_line, int last_line,
            std::vector<Suppression> &out)
{
    size_t pos = text.find("isol-lint:");
    while (pos != std::string::npos) {
        size_t open = text.find("allow(", pos);
        if (open == std::string::npos)
            return;
        size_t close = text.find(')', open);
        if (close == std::string::npos)
            return;
        std::string list = text.substr(open + 6, close - open - 6);
        std::string id;
        auto flush = [&] {
            if (!id.empty())
                out.push_back({first_line, last_line, id});
            id.clear();
        };
        for (char c : list) {
            if (c == ',' || c == ' ' || c == '\t')
                flush();
            else
                id += c;
        }
        flush();
        pos = text.find("isol-lint:", close);
    }
}

FileView
buildView(const FileInput &input)
{
    FileView view;
    view.path = input.path;
    std::vector<Token> all = tokenize(input.content);

    // Lines that contain at least one code (non-comment) token: a
    // suppression comment alone on its line extends to the next line.
    std::set<int> code_lines;
    for (const Token &t : all) {
        if (t.kind != TokKind::kComment)
            code_lines.insert(t.line);
    }

    std::vector<size_t> marker_offsets;
    for (const Token &t : all) {
        if (t.kind != TokKind::kComment) {
            view.code.push_back(t);
            continue;
        }
        int end_line = t.line + static_cast<int>(std::count(
                                    t.text.begin(), t.text.end(), '\n'));
        std::vector<Suppression> allows;
        parseAllows(t.text, t.line, end_line, allows);
        for (Suppression &s : allows) {
            if (code_lines.count(t.line) == 0) {
                // Stand-alone comment: cover everything up to and
                // including the next line that has code, so wrapped
                // justification text stays legal.
                auto next = code_lines.upper_bound(end_line);
                s.last_line = next != code_lines.end() ? *next
                                                       : end_line + 1;
            }
            view.suppressions.push_back(s);
        }
        if (t.text.find("isol: parallel") != std::string::npos ||
            t.text.find("isol:parallel") != std::string::npos)
            marker_offsets.push_back(t.offset);
    }

    // Resolve each marker to the brace block opened by the next `{`
    // after the marker (annotate the worker lambda, marker above or on
    // the line before its opening brace).
    for (size_t marker : marker_offsets) {
        size_t i = 0;
        while (i < view.code.size() &&
               !(view.code[i].offset > marker && view.code[i].text == "{"))
            ++i;
        if (i >= view.code.size())
            continue;
        int depth = 0;
        size_t j = i;
        for (; j < view.code.size(); ++j) {
            if (view.code[j].text == "{")
                ++depth;
            else if (view.code[j].text == "}" && --depth == 0)
                break;
        }
        view.regions.push_back({i, std::min(j, view.code.size() - 1)});
    }
    return view;
}

bool
isSuppressed(const FileView &view, int line, const std::string &rule_id)
{
    for (const Suppression &s : view.suppressions) {
        if (line >= s.first_line && line <= s.last_line &&
            (s.rule == rule_id || s.rule == "*"))
            return true;
    }
    return false;
}

// --- Shared token helpers ---------------------------------------------

bool
isIdent(const Token &t, const char *text)
{
    return t.kind == TokKind::kIdent && t.text == text;
}

/**
 * Scan a template argument list starting at the `<` at index `open`.
 * Returns the index one past the closing `>` and reports whether a `*`
 * occurs at top level before the first top-level comma (`key_ptr`) or
 * anywhere at top level (`any_ptr`).
 */
size_t
scanTemplateArgs(const std::vector<Token> &code, size_t open,
                 bool *key_ptr, bool *any_ptr)
{
    int depth = 0;
    bool past_comma = false;
    size_t i = open;
    for (; i < code.size(); ++i) {
        const std::string &t = code[i].text;
        if (t == "<") {
            ++depth;
        } else if (t == ">") {
            if (--depth == 0) {
                ++i;
                break;
            }
        } else if (t == ">>") {
            depth -= 2;
            if (depth <= 0) {
                ++i;
                break;
            }
        } else if (depth == 1 && t == ",") {
            past_comma = true;
        } else if (depth == 1 && t == "*") {
            if (any_ptr != nullptr)
                *any_ptr = true;
            if (!past_comma && key_ptr != nullptr)
                *key_ptr = true;
        }
    }
    return i;
}

/** Index of the matching closer for the opener at `open`, or npos. */
size_t
matchForward(const std::vector<Token> &code, size_t open,
             const char *opener, const char *closer)
{
    int depth = 0;
    for (size_t i = open; i < code.size(); ++i) {
        if (code[i].text == opener)
            ++depth;
        else if (code[i].text == closer && --depth == 0)
            return i;
    }
    return std::string::npos;
}

void
emit(std::vector<Finding> &findings, std::vector<Finding> &suppressed,
     const FileView &view, int line, const char *rule_id,
     std::string message)
{
    Finding f;
    f.file = view.path;
    f.line = line;
    f.rule = rule_id;
    f.message = std::move(message);
    f.hint = rule(rule_id).hint;
    if (isSuppressed(view, line, rule_id))
        suppressed.push_back(std::move(f));
    else
        findings.push_back(std::move(f));
}

// --- D1: pointer-keyed unordered containers ---------------------------

struct ContainerDecl
{
    std::string name;
    std::string file;
    int line;
};

/** Pass A: collect pointer-keyed unordered_{map,set} variable names. */
void
collectPointerKeyedContainers(const FileView &view,
                              std::vector<ContainerDecl> &decls,
                              std::vector<Finding> &findings,
                              std::vector<Finding> &suppressed)
{
    const std::vector<Token> &code = view.code;
    for (size_t i = 0; i + 1 < code.size(); ++i) {
        bool is_map = isIdent(code[i], "unordered_map");
        bool is_set = isIdent(code[i], "unordered_set") ||
                      isIdent(code[i], "unordered_multiset");
        bool is_multimap = isIdent(code[i], "unordered_multimap");
        if (!is_map && !is_set && !is_multimap)
            continue;
        if (code[i + 1].text != "<")
            continue;

        bool key_ptr = false;
        bool any_ptr = false;
        size_t after = scanTemplateArgs(code, i + 1, &key_ptr, &any_ptr);
        bool ptr_key = (is_map || is_multimap) ? key_ptr : any_ptr;
        if (!ptr_key || after >= code.size())
            continue;
        if (code[after].kind != TokKind::kIdent)
            continue; // temporary / return type / cast — no variable name
        if (after + 1 < code.size() && code[after + 1].text == "(")
            continue; // function declaration returning the container

        decls.push_back({code[after].text, view.path, code[after].line});
        emit(findings, suppressed, view, code[i].line, "D1",
             "'" + code[after].text +
                 "' is a pointer-keyed unordered container; its "
                 "iteration order is heap-address order and differs "
                 "across runs");
    }
}

/**
 * Pass A': collect names that are *also* declared as a deterministic
 * container somewhere in the set. A name with both a pointer-keyed
 * unordered declaration and a benign one is ambiguous, and iteration
 * in a file other than the unordered declaration's is not flagged —
 * otherwise a `deque<T> states_` in one class would be blamed for an
 * `unordered_map<K*,V> states_` in another.
 */
void
collectBenignContainerNames(const FileView &view,
                            std::set<std::string> &benign)
{
    static const std::set<std::string> kOrderedContainers = {
        "vector", "deque", "list", "forward_list", "array",
        "map", "set", "multimap", "multiset", "span"};
    const std::vector<Token> &code = view.code;
    for (size_t i = 0; i + 1 < code.size(); ++i) {
        if (code[i].kind != TokKind::kIdent ||
            kOrderedContainers.count(code[i].text) == 0)
            continue;
        if (code[i + 1].text != "<")
            continue;
        size_t after = scanTemplateArgs(code, i + 1, nullptr, nullptr);
        if (after >= code.size() || code[after].kind != TokKind::kIdent)
            continue;
        if (after + 1 < code.size() && code[after + 1].text == "(")
            continue;
        benign.insert(code[after].text);
    }
}

/** Pass B: flag iteration over any registered container name. */
void
checkD1Iteration(const FileView &view,
                 const std::map<std::string, ContainerDecl> &by_name,
                 const std::set<std::string> &benign,
                 std::vector<Finding> &findings,
                 std::vector<Finding> &suppressed)
{
    auto ambiguous = [&](const ContainerDecl &d, const std::string &name) {
        return d.file != view.path && benign.count(name) != 0;
    };
    const std::vector<Token> &code = view.code;
    for (size_t i = 0; i < code.size(); ++i) {
        // Range-for: `for (decl : name)` where the range expression is a
        // plain (possibly member-qualified) registered name.
        if (isIdent(code[i], "for") && i + 1 < code.size() &&
            code[i + 1].text == "(") {
            size_t close = matchForward(code, i + 1, "(", ")");
            if (close == std::string::npos)
                continue;
            size_t colon = std::string::npos;
            int depth = 0;
            for (size_t k = i + 1; k < close; ++k) {
                if (code[k].text == "(" || code[k].text == "[")
                    ++depth;
                else if (code[k].text == ")" || code[k].text == "]")
                    --depth;
                else if (depth == 1 && code[k].text == ":" &&
                         k > i + 1 && code[k - 1].text != ":")
                    colon = k;
            }
            if (colon == std::string::npos)
                continue;
            bool has_call = false;
            std::string last_ident;
            for (size_t k = colon + 1; k < close; ++k) {
                if (code[k].text == "(")
                    has_call = true;
                if (code[k].kind == TokKind::kIdent)
                    last_ident = code[k].text;
            }
            auto it = by_name.find(last_ident);
            if (!has_call && it != by_name.end() &&
                !ambiguous(it->second, last_ident)) {
                emit(findings, suppressed, view, code[i].line, "D1",
                     "range-for over pointer-keyed unordered container '" +
                         last_ident + "' (declared at " + it->second.file +
                         ":" + std::to_string(it->second.line) +
                         ") visits elements in address order");
            }
            continue;
        }
        // Iterator loop: `name.begin()` / `name.cbegin()`.
        if (code[i].kind == TokKind::kIdent && i + 2 < code.size() &&
            code[i + 1].text == "." &&
            (isIdent(code[i + 2], "begin") ||
             isIdent(code[i + 2], "cbegin"))) {
            auto it = by_name.find(code[i].text);
            if (it != by_name.end() &&
                !ambiguous(it->second, code[i].text)) {
                emit(findings, suppressed, view, code[i].line, "D1",
                     "iterator walk over pointer-keyed unordered "
                     "container '" +
                         code[i].text + "' (declared at " +
                         it->second.file + ":" +
                         std::to_string(it->second.line) +
                         ") visits elements in address order");
            }
        }
    }
}

// --- D2: wall clock and ambient entropy -------------------------------

void
checkD2(const FileView &view, std::vector<Finding> &findings,
        std::vector<Finding> &suppressed)
{
    if (pathIsRngHeader(view.path))
        return;
    const std::vector<Token> &code = view.code;
    static const std::set<std::string> kClockTypes = {
        "system_clock", "steady_clock", "high_resolution_clock",
        "random_device"};
    static const std::set<std::string> kEntropyCalls = {
        "time", "clock", "rand", "srand", "gettimeofday", "timespec_get",
        "getentropy", "clock_gettime"};

    for (size_t i = 0; i < code.size(); ++i) {
        const Token &t = code[i];
        if (t.kind != TokKind::kIdent)
            continue;
        if (kClockTypes.count(t.text) != 0) {
            emit(findings, suppressed, view, t.line, "D2",
                 "'" + t.text +
                     "' reads ambient time/entropy; simulation state "
                     "must come from Simulator::now() or the seeded Rng");
            continue;
        }
        if (kEntropyCalls.count(t.text) != 0 && i + 1 < code.size() &&
            code[i + 1].text == "(") {
            if (i > 0) {
                const std::string &prev = code[i - 1].text;
                if (prev == "." || prev == "->")
                    continue; // member call on some object, not libc
                if (prev == "::" &&
                    !(i >= 2 && isIdent(code[i - 2], "std")))
                    continue; // qualified call into project code
                // A type name (or declarator punctuation) before the
                // identifier makes this a declaration, not a call.
                static const std::set<std::string> kCallContexts = {
                    "return", "co_return", "case", "else", "do"};
                if (code[i - 1].kind == TokKind::kIdent &&
                    kCallContexts.count(prev) == 0 && prev != "std")
                    continue;
                if (prev == "*" || prev == "&" || prev == ">")
                    continue; // `int *time(...)`-style declarator
            }
            emit(findings, suppressed, view, t.line, "D2",
                 "call to '" + t.text +
                     "()' injects wall-clock/entropy into the run");
        }
    }
}

// --- D3: pointer comparisons in comparators ---------------------------

void
checkD3(const FileView &view, std::vector<Finding> &findings,
        std::vector<Finding> &suppressed)
{
    const std::vector<Token> &code = view.code;
    static const std::set<std::string> kCmp = {"<", ">", "<=", ">="};

    for (size_t i = 0; i < code.size(); ++i) {
        // std::less<T *> — ordering functor over raw pointers.
        if (isIdent(code[i], "less") && i + 1 < code.size() &&
            code[i + 1].text == "<") {
            bool any_ptr = false;
            scanTemplateArgs(code, i + 1, nullptr, &any_ptr);
            if (any_ptr) {
                emit(findings, suppressed, view, code[i].line, "D3",
                     "std::less over a pointer type orders by address");
            }
            continue;
        }

        // A parameter list directly followed by `{` — function or
        // lambda body. Collect pointer-typed parameter names, then flag
        // bare `p OP q` comparisons between them inside the body.
        if (code[i].text != "(")
            continue;
        size_t close = matchForward(code, i, "(", ")");
        if (close == std::string::npos || close + 1 >= code.size())
            continue;
        if (code[close + 1].text != "{")
            continue;

        // Split the parameter list on top-level commas; a chunk with a
        // `*` declares a pointer parameter whose name is its last ident.
        std::set<std::string> ptr_params;
        {
            int depth = 0;
            bool has_ptr = false;
            std::string last_ident;
            auto flush = [&] {
                if (has_ptr && !last_ident.empty())
                    ptr_params.insert(last_ident);
                has_ptr = false;
                last_ident.clear();
            };
            for (size_t k = i + 1; k < close; ++k) {
                const std::string &t = code[k].text;
                if (t == "(" || t == "<" || t == "[") {
                    ++depth;
                } else if (t == ")" || t == ">" || t == "]") {
                    --depth;
                } else if (depth == 0 && t == ",") {
                    flush();
                    continue;
                }
                if (depth == 0 && t == "*")
                    has_ptr = true;
                if (depth == 0 && code[k].kind == TokKind::kIdent)
                    last_ident = code[k].text;
            }
            flush();
        }
        if (ptr_params.empty())
            continue;

        size_t body_end = matchForward(code, close + 1, "{", "}");
        if (body_end == std::string::npos)
            continue;
        for (size_t k = close + 2; k + 1 < body_end; ++k) {
            if (kCmp.count(code[k].text) == 0)
                continue;
            const Token &lhs = code[k - 1];
            const Token &rhs = code[k + 1];
            if (lhs.kind != TokKind::kIdent ||
                rhs.kind != TokKind::kIdent)
                continue;
            if (ptr_params.count(lhs.text) == 0 ||
                ptr_params.count(rhs.text) == 0)
                continue;
            // Bare pointers only: not `a->x < b->x` or `f(a) < g(b)`.
            if (k >= 2) {
                const std::string &before = code[k - 2].text;
                if (before == "->" || before == "." || before == "::")
                    continue;
            }
            if (k + 2 < body_end) {
                const std::string &after = code[k + 2].text;
                if (after == "->" || after == "." || after == "::" ||
                    after == "(" || after == "[")
                    continue;
            }
            emit(findings, suppressed, view, code[k].line, "D3",
                 "comparator orders '" + lhs.text + "' and '" + rhs.text +
                     "' by pointer value");
        }
    }
}

// --- D4: mutable global / static state in src/ ------------------------

void
checkD4(const FileView &view, std::vector<Finding> &findings,
        std::vector<Finding> &suppressed)
{
    if (!pathHasSrcComponent(view.path))
        return;
    const std::vector<Token> &code = view.code;

    enum class ScopeKind { kNamespace, kClass, kFunction };
    std::vector<ScopeKind> scopes;
    static const std::set<std::string> kScopeClassKw = {"class", "struct",
                                                       "union", "enum"};
    static const std::set<std::string> kSkipLeads = {
        "using", "typedef", "template", "friend", "extern",
        "static_assert", "namespace", "class", "struct", "enum", "union",
        "concept", "public", "private", "protected", "return", "if",
        "for", "while", "switch", "do", "goto", "case", "default",
        "break", "continue", "throw", "delete"};

    auto atNamespaceScope = [&] {
        for (ScopeKind s : scopes) {
            if (s != ScopeKind::kNamespace)
                return false;
        }
        return true;
    };

    auto evalStatement = [&](size_t begin, size_t end) {
        if (begin >= end)
            return;
        const Token &first = code[begin];
        if (first.kind != TokKind::kIdent &&
            !(first.kind == TokKind::kPunct && first.text == "*"))
            return;
        if (kSkipLeads.count(first.text) != 0)
            return;

        bool has_static = false;
        bool has_thread_local = false;
        bool has_const = false;
        bool has_operator = false;
        size_t first_assign = end;
        for (size_t k = begin; k < end; ++k) {
            const std::string &t = code[k].text;
            if (t == "static")
                has_static = true;
            else if (t == "thread_local")
                has_thread_local = true;
            else if (t == "const" || t == "constexpr" || t == "consteval")
                has_const = true;
            else if (t == "operator")
                has_operator = true;
            else if (t == "=" && first_assign == end)
                first_assign = k;
        }
        if (has_const || has_operator)
            return;
        for (size_t k = begin; k < first_assign; ++k) {
            if (code[k].text == "(")
                return; // function declaration / definition
        }

        ScopeKind scope = scopes.empty() ? ScopeKind::kNamespace
                                         : scopes.back();
        bool namespace_scope =
            scopes.empty() ||
            (scope == ScopeKind::kNamespace && atNamespaceScope());
        bool flagged = false;
        if (namespace_scope)
            flagged = true; // any mutable namespace-scope variable
        else if (has_static || has_thread_local)
            flagged = true; // static member / function-local static
        if (!flagged)
            return;

        // Declared name: identifier right before `=`, `{`, `[` or `;`.
        std::string name;
        for (size_t k = begin; k < end; ++k) {
            const std::string &t = code[k].text;
            if ((t == "=" || t == "{" || t == "[" || t == ";") && k > begin &&
                code[k - 1].kind == TokKind::kIdent) {
                name = code[k - 1].text;
                break;
            }
        }
        if (name.empty()) {
            if (code[end - 1].kind != TokKind::kIdent)
                return;
            name = code[end - 1].text;
        }
        const char *what = namespace_scope
                               ? "mutable namespace-scope state"
                               : (has_thread_local
                                      ? "mutable thread_local state"
                                      : "mutable static state");
        emit(findings, suppressed, view, first.line, "D4",
             std::string(what) + " '" + name +
                 "' breaks shared-nothing sweep workers");
    };

    size_t stmt_start = 0;
    for (size_t i = 0; i < code.size(); ++i) {
        const std::string &t = code[i].text;
        if (t == "{") {
            // Classify the block from the statement tokens before it.
            bool kw_namespace = false;
            bool kw_class = false;
            bool has_paren = false;
            for (size_t k = stmt_start; k < i; ++k) {
                if (isIdent(code[k], "namespace"))
                    kw_namespace = true;
                else if (code[k].kind == TokKind::kIdent &&
                         kScopeClassKw.count(code[k].text) != 0)
                    kw_class = true;
                else if (code[k].text == "(" || code[k].text == ")")
                    has_paren = true;
            }
            const std::string prev =
                i > stmt_start ? code[i - 1].text : std::string();
            if (kw_namespace) {
                scopes.push_back(ScopeKind::kNamespace);
                stmt_start = i + 1;
            } else if (kw_class && !has_paren) {
                scopes.push_back(ScopeKind::kClass);
                stmt_start = i + 1;
            } else if (has_paren) {
                scopes.push_back(ScopeKind::kFunction);
                stmt_start = i + 1;
            } else if (!prev.empty() &&
                       (code[i - 1].kind == TokKind::kIdent || prev == "=" ||
                        prev == "," || prev == ">")) {
                // Brace initializer `Type name{...}`: stay in the
                // statement, skip to the matching close.
                size_t close = matchForward(code, i, "{", "}");
                if (close == std::string::npos)
                    break;
                i = close;
            } else {
                scopes.push_back(ScopeKind::kFunction);
                stmt_start = i + 1;
            }
        } else if (t == "}") {
            if (!scopes.empty())
                scopes.pop_back();
            stmt_start = i + 1;
        } else if (t == ";") {
            evalStatement(stmt_start, i);
            stmt_start = i + 1;
        }
    }
}

// --- D5: float accumulation inside parallel regions -------------------

void
checkD5(const FileView &view, std::vector<Finding> &findings,
        std::vector<Finding> &suppressed)
{
    if (view.regions.empty())
        return;
    const std::vector<Token> &code = view.code;

    // All float/double variable declarations, by name -> token indexes.
    std::map<std::string, std::vector<size_t>> fp_decls;
    for (size_t i = 0; i + 1 < code.size(); ++i) {
        if (!isIdent(code[i], "double") && !isIdent(code[i], "float"))
            continue;
        if (code[i + 1].kind != TokKind::kIdent)
            continue;
        if (i + 2 < code.size() && code[i + 2].text == "(")
            continue; // function returning double
        fp_decls[code[i + 1].text].push_back(i);
    }
    if (fp_decls.empty())
        return;

    static const std::set<std::string> kAccum = {"+=", "-=", "*=", "/="};
    for (const Region &region : view.regions) {
        for (size_t i = region.begin + 1; i < region.end; ++i) {
            if (kAccum.count(code[i].text) == 0)
                continue;
            // Walk back to the root identifier of the left-hand side
            // (`total`, `this->total`, `acc.sum`, `slots[i].v`, ...).
            size_t j = i;
            std::string root;
            while (j > region.begin) {
                --j;
                const std::string &t = code[j].text;
                if (t == "]" || t == ")") {
                    const char *opn = t == "]" ? "[" : "(";
                    int d = 0;
                    while (j > region.begin) {
                        if (code[j].text == t)
                            ++d;
                        else if (code[j].text == opn && --d == 0)
                            break;
                        --j;
                    }
                    continue;
                }
                if (code[j].kind == TokKind::kIdent) {
                    root = code[j].text;
                    if (j > region.begin + 1 &&
                        (code[j - 1].text == "." ||
                         code[j - 1].text == "->" ||
                         code[j - 1].text == "::")) {
                        --j;
                        continue;
                    }
                    break;
                }
                break;
            }
            if (root.empty())
                continue;
            auto it = fp_decls.find(root);
            if (it == fp_decls.end())
                continue;
            bool declared_before = false;
            bool declared_inside = false;
            for (size_t decl : it->second) {
                if (decl < region.begin)
                    declared_before = true;
                else if (decl > region.begin && decl < i)
                    declared_inside = true;
            }
            if (!declared_before || declared_inside)
                continue; // region-local accumulator is fine
            emit(findings, suppressed, view, code[i].line, "D5",
                 "floating-point accumulation into '" + root +
                     "' declared outside the parallel region: summation "
                     "order depends on worker scheduling");
        }
    }
}

} // namespace

const std::vector<RuleInfo> &
ruleTable()
{
    return kRules;
}

LintResult
lintFiles(const std::vector<FileInput> &files)
{
    LintResult result;

    std::vector<FileView> views;
    views.reserve(files.size());
    for (const FileInput &f : files)
        views.push_back(buildView(f));

    // D1 pass A across the whole set; declaration findings emitted here.
    std::vector<ContainerDecl> decls;
    for (const FileView &view : views) {
        collectPointerKeyedContainers(view, decls, result.findings,
                                      result.suppressed);
    }
    std::map<std::string, ContainerDecl> by_name;
    for (const ContainerDecl &d : decls)
        by_name.emplace(d.name, d);
    std::set<std::string> benign;
    for (const FileView &view : views)
        collectBenignContainerNames(view, benign);

    for (const FileView &view : views) {
        checkD1Iteration(view, by_name, benign, result.findings,
                         result.suppressed);
        checkD2(view, result.findings, result.suppressed);
        checkD3(view, result.findings, result.suppressed);
        checkD4(view, result.findings, result.suppressed);
        checkD5(view, result.findings, result.suppressed);
    }

    auto order = [](const Finding &a, const Finding &b) {
        if (a.file != b.file)
            return a.file < b.file;
        if (a.line != b.line)
            return a.line < b.line;
        return a.rule < b.rule;
    };
    std::sort(result.findings.begin(), result.findings.end(), order);
    std::sort(result.suppressed.begin(), result.suppressed.end(), order);
    return result;
}

} // namespace isol_lint
