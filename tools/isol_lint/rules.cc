/**
 * @file
 * Rule engine for isol-lint: families D (determinism), P (sharding
 * safety), U (unit safety) over the token stream.
 *
 * The engine runs in four phases:
 *   1. per-file views (parallel): tokenize, extract suppressions,
 *      `// isol:` markers (parallel/domain regions, shared,
 *      merge-ordered), and quoted includes;
 *   2. per-file fact collection (parallel): pointer-keyed container
 *      declarations (D1), mutable namespace-scope/static declarations
 *      (D4/P1), and unit-carrying function signatures (U1);
 *   3. global model (serial): registries merged across the set, plus
 *      the include-graph transitive-reachability relation that P1/P2
 *      use to decide whether a foreign symbol is actually visible;
 *   4. per-file rule checks (parallel), merged in input order so the
 *      finding order is identical for any worker count.
 */

#include "lint.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <thread>

namespace isol_lint
{

namespace
{

// --- Rule metadata ----------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"D1",
     "pointer-keyed unordered container (iteration order = heap-address "
     "order)",
     "iterate an index-mapped creation-order deque instead (see "
     "src/blk/cg_state.hh); keep pointer-keyed maps lookup-only and "
     "document with allow(D1)"},
    {"D2",
     "wall-clock or ambient-entropy source outside src/common/rng.hh",
     "derive all randomness from the scenario's seeded isol::Rng and all "
     "time from Simulator::now(); profiling clocks go through "
     "sweep::monotonicMs()"},
    {"D3",
     "pointer-value ordering comparison in a comparator",
     "compare a stable field (id, creation index) instead of the "
     "pointers themselves"},
    {"D4",
     "mutable namespace-scope or static state in src/",
     "make it const/constexpr or move it into per-run state owned by "
     "the Scenario; sweep-engine infrastructure may allow(D4) with "
     "justification"},
    {"D5",
     "float accumulation into pre-region state inside a parallel region",
     "collect per-index partial results and fold them after the "
     "parallel section, in index order (see runFairness in "
     "src/isolbench/d2_fairness.cc)"},
    {"P1",
     "mutable state owned by one isol domain referenced from another",
     "route cross-domain state through the barrier/merge layer, or mark "
     "the declaration `// isol: shared(reason)` if it is sanctioned "
     "coordination state"},
    {"P2",
     "deferred callback captures by reference across a domain boundary",
     "capture by value (or [this] for the owning component); a deferred "
     "callback can outlive its frame and migrate to another shard"},
    {"P3",
     "order-dependent accumulation inside a parallel/domain region "
     "without a merge-ordered marker",
     "accumulate into region-local state and fold in index order, or "
     "mark the site `// isol: merge-ordered` when the merge layer "
     "guarantees ordering"},
    {"U1",
     "raw integer literal or unit-suffix mismatch flowing into a "
     "unit-typed parameter",
     "wrap time literals in nsToNs()/usToNs()/msToNs() so the unit is "
     "explicit, and convert between _bytes/_sectors/_lba at the "
     "blk/ssd boundary instead of passing them through"},
};

const RuleInfo &
rule(const char *id)
{
    for (const RuleInfo &r : kRules) {
        if (std::string(r.id) == id)
            return r;
    }
    return kRules.front();
}

// --- Per-file pre-processing ------------------------------------------

/** Inclusive line range suppressing one rule (or "*" for all). */
struct Suppression
{
    int first_line;
    int last_line;
    std::string rule; //!< rule id, or "*"
    int comment_line = 0; //!< where the allow() comment itself sits
    bool used = false; //!< matched at least one (suppressed) finding
};

/** Inclusive line range tagged by a non-suppression marker. */
struct LineRange
{
    int first_line;
    int last_line;
};

/**
 * Token range (code-token indexes) of one annotated brace block:
 * `// isol: parallel` regions and `// isol: domain(<name>)` regions.
 */
struct Region
{
    size_t begin; //!< index of the opening `{`
    size_t end; //!< index of the matching `}`
    bool parallel = false;
    std::string domain; //!< empty for plain parallel regions
};

struct FileView
{
    std::string path;
    std::vector<Token> code; //!< comment-free tokens
    std::vector<Suppression> suppressions;
    std::vector<Region> regions;
    std::string file_domain; //!< `// isol: domain()` before any code
    std::vector<LineRange> shared_lines; //!< `// isol: shared()`
    std::vector<LineRange> merge_ordered_lines;
    std::vector<std::string> includes; //!< quoted include targets
};

bool
pathHasSrcComponent(const std::string &path)
{
    return path.rfind("src/", 0) == 0 ||
           path.find("/src/") != std::string::npos;
}

bool
pathIsRngHeader(const std::string &path)
{
    const std::string suffix = "common/rng.hh";
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

/** Parse `isol-lint: allow(D1, D2)` occurrences out of a comment. */
void
parseAllows(const std::string &text, int first_line, int last_line,
            std::vector<Suppression> &out)
{
    size_t pos = text.find("isol-lint:");
    while (pos != std::string::npos) {
        size_t open = text.find("allow(", pos);
        if (open == std::string::npos)
            return;
        size_t close = text.find(')', open);
        if (close == std::string::npos)
            return;
        std::string list = text.substr(open + 6, close - open - 6);
        std::string id;
        auto flush = [&] {
            if (!id.empty())
                out.push_back({first_line, last_line, id, first_line});
            id.clear();
        };
        for (char c : list) {
            if (c == ',' || c == ' ' || c == '\t')
                flush();
            else
                id += c;
        }
        flush();
        pos = text.find("isol-lint:", close);
    }
}

/**
 * Extract the name inside `isol: <marker>(<name>)`, or "" when the
 * marker is absent. `isol:domain(...)` (no space) is accepted too.
 */
bool
parseMarker(const std::string &text, const char *marker,
            std::string *name)
{
    for (const char *prefix : {"isol: ", "isol:"}) {
        size_t pos = text.find(std::string(prefix) + marker);
        if (pos == std::string::npos)
            continue;
        if (name != nullptr) {
            size_t open = text.find('(', pos);
            size_t close = open == std::string::npos
                               ? std::string::npos
                               : text.find(')', open);
            *name = close == std::string::npos
                        ? std::string()
                        : text.substr(open + 1, close - open - 1);
        }
        return true;
    }
    return false;
}

FileView
buildView(const FileInput &input)
{
    FileView view;
    view.path = input.path;
    view.includes = scanIncludes(input.content);
    std::vector<Token> all = tokenize(input.content);

    // Lines that contain at least one code (non-comment) token: a
    // marker comment alone on its line extends to the next such line.
    std::set<int> code_lines;
    size_t first_code_offset = std::string::npos;
    for (const Token &t : all) {
        if (t.kind != TokKind::kComment) {
            code_lines.insert(t.line);
            if (first_code_offset == std::string::npos)
                first_code_offset = t.offset;
        }
    }
    auto lineRange = [&](const Token &t, int end_line) {
        LineRange range{t.line, end_line};
        if (code_lines.count(t.line) == 0) {
            auto next = code_lines.upper_bound(end_line);
            range.last_line =
                next != code_lines.end() ? *next : end_line + 1;
        }
        return range;
    };

    struct Marker
    {
        size_t offset;
        bool parallel;
        std::string domain;
    };
    std::vector<Marker> markers;
    for (const Token &t : all) {
        if (t.kind != TokKind::kComment) {
            view.code.push_back(t);
            continue;
        }
        // Only `//` comments carry directives: doc blocks quote the
        // grammar (`allow(D2): reason`) without meaning it.
        if (t.text.rfind("//", 0) != 0)
            continue;
        int end_line = t.line + static_cast<int>(std::count(
                                    t.text.begin(), t.text.end(), '\n'));
        std::vector<Suppression> allows;
        parseAllows(t.text, t.line, end_line, allows);
        for (Suppression &s : allows) {
            if (code_lines.count(t.line) == 0) {
                // Stand-alone comment: cover everything up to and
                // including the next line that has code, so wrapped
                // justification text stays legal.
                auto next = code_lines.upper_bound(end_line);
                s.last_line = next != code_lines.end() ? *next
                                                       : end_line + 1;
            }
            view.suppressions.push_back(s);
        }
        if (parseMarker(t.text, "parallel", nullptr))
            markers.push_back({t.offset, true, ""});
        std::string domain;
        if (parseMarker(t.text, "domain", &domain) && !domain.empty()) {
            if (first_code_offset == std::string::npos ||
                t.offset < first_code_offset)
                view.file_domain = domain;
            else
                markers.push_back({t.offset, false, domain});
        }
        if (parseMarker(t.text, "shared", nullptr))
            view.shared_lines.push_back(lineRange(t, end_line));
        if (parseMarker(t.text, "merge-ordered", nullptr))
            view.merge_ordered_lines.push_back(lineRange(t, end_line));
    }

    // Resolve each marker to the brace block opened by the next `{`
    // after the marker (annotate the worker lambda or domain block,
    // marker above or on the line before its opening brace).
    for (const Marker &marker : markers) {
        size_t i = 0;
        while (i < view.code.size() &&
               !(view.code[i].offset > marker.offset &&
                 view.code[i].text == "{"))
            ++i;
        if (i >= view.code.size())
            continue;
        int depth = 0;
        size_t j = i;
        for (; j < view.code.size(); ++j) {
            if (view.code[j].text == "{")
                ++depth;
            else if (view.code[j].text == "}" && --depth == 0)
                break;
        }
        view.regions.push_back({i, std::min(j, view.code.size() - 1),
                                marker.parallel, marker.domain});
    }
    return view;
}

bool
lineInRanges(const std::vector<LineRange> &ranges, int line)
{
    for (const LineRange &r : ranges) {
        if (line >= r.first_line && line <= r.last_line)
            return true;
    }
    return false;
}

/**
 * Domain owning the token at code index `idx`: the innermost enclosing
 * `// isol: domain()` region, else the file-level domain (possibly "").
 */
std::string
domainAt(const FileView &view, size_t idx)
{
    const Region *best = nullptr;
    for (const Region &r : view.regions) {
        if (r.domain.empty() || idx < r.begin || idx > r.end)
            continue;
        if (best == nullptr || r.begin > best->begin)
            best = &r;
    }
    return best != nullptr ? best->domain : view.file_domain;
}

bool
insideParallelRegion(const FileView &view, size_t idx)
{
    for (const Region &r : view.regions) {
        if (r.parallel && idx > r.begin && idx < r.end)
            return true;
    }
    return false;
}

// --- Shared token helpers ---------------------------------------------

bool
isIdent(const Token &t, const char *text)
{
    return t.kind == TokKind::kIdent && t.text == text;
}

/**
 * Scan a template argument list starting at the `<` at index `open`.
 * Returns the index one past the closing `>` and reports whether a `*`
 * occurs at top level before the first top-level comma (`key_ptr`) or
 * anywhere at top level (`any_ptr`).
 */
size_t
scanTemplateArgs(const std::vector<Token> &code, size_t open,
                 bool *key_ptr, bool *any_ptr)
{
    int depth = 0;
    bool past_comma = false;
    size_t i = open;
    for (; i < code.size(); ++i) {
        const std::string &t = code[i].text;
        if (t == "<") {
            ++depth;
        } else if (t == ">") {
            if (--depth == 0) {
                ++i;
                break;
            }
        } else if (t == ">>") {
            depth -= 2;
            if (depth <= 0) {
                ++i;
                break;
            }
        } else if (depth == 1 && t == ",") {
            past_comma = true;
        } else if (depth == 1 && t == "*") {
            if (any_ptr != nullptr)
                *any_ptr = true;
            if (!past_comma && key_ptr != nullptr)
                *key_ptr = true;
        }
    }
    return i;
}

/** Index of the matching closer for the opener at `open`, or npos. */
size_t
matchForward(const std::vector<Token> &code, size_t open,
             const char *opener, const char *closer)
{
    int depth = 0;
    for (size_t i = open; i < code.size(); ++i) {
        if (code[i].text == opener)
            ++depth;
        else if (code[i].text == closer && --depth == 0)
            return i;
    }
    return std::string::npos;
}

/**
 * Split the argument/parameter list between `open` ('(') and its
 * matching ')' on top-level commas. Returns [first,one-past-last)
 * token-index ranges; `*close_out` gets the ')' index.
 */
std::vector<std::pair<size_t, size_t>>
splitTopLevel(const std::vector<Token> &code, size_t open,
              size_t *close_out)
{
    std::vector<std::pair<size_t, size_t>> chunks;
    size_t close = matchForward(code, open, "(", ")");
    if (close_out != nullptr)
        *close_out = close;
    if (close == std::string::npos)
        return chunks;
    int depth = 0;
    size_t start = open + 1;
    for (size_t i = open + 1; i < close; ++i) {
        const std::string &t = code[i].text;
        if (t == "(" || t == "[" || t == "{" || t == "<")
            ++depth;
        else if (t == ")" || t == "]" || t == "}" || t == ">")
            --depth;
        else if (depth == 0 && t == ",") {
            chunks.push_back({start, i});
            start = i + 1;
        }
    }
    if (start < close)
        chunks.push_back({start, close});
    return chunks;
}

/** Per-file rule output, merged in input order after the checks. */
struct FileResult
{
    std::vector<Finding> findings;
    std::vector<Finding> suppressed;
};

Suppression *
findSuppression(FileView &view, int line, const std::string &rule_id)
{
    for (Suppression &s : view.suppressions) {
        if (line >= s.first_line && line <= s.last_line &&
            (s.rule == rule_id || s.rule == "*"))
            return &s;
    }
    return nullptr;
}

void
emit(FileResult &out, FileView &view, int line, const char *rule_id,
     std::string message)
{
    Finding f;
    f.file = view.path;
    f.line = line;
    f.rule = rule_id;
    f.message = std::move(message);
    f.hint = rule(rule_id).hint;
    if (Suppression *s = findSuppression(view, line, rule_id)) {
        s->used = true;
        out.suppressed.push_back(std::move(f));
    } else {
        out.findings.push_back(std::move(f));
    }
}

// --- Global program model (cross-TU registries) -----------------------

struct ContainerDecl
{
    std::string name;
    std::string file;
    int line;
};

/** One mutable namespace-scope / static declaration (D4 and P1). */
struct MutableDecl
{
    std::string name;
    int line = 0;
    size_t token = 0; //!< code index of the statement's first token
    bool namespace_scope = false;
    bool thread_local_ = false;
};

/** P1 ownership-map entry: who owns one mutable symbol. */
struct OwnedSymbol
{
    std::string name;
    std::string file;
    std::string domain;
    int line = 0;
    size_t view = 0; //!< index into the view vector
    bool shared = false; //!< `// isol: shared()` sanctioned
};

/** U1 registry: one collected function signature. */
struct Signature
{
    std::string file;
    size_t min_arity = 0; //!< params before the first defaulted one
    std::vector<bool> is_time; //!< SimTime-typed parameter
    std::vector<std::string> unit; //!< unit suffix of the param name
    std::vector<std::string> param_name;
};

/** Facts one file contributes to the global model. */
struct FileFacts
{
    std::vector<ContainerDecl> d1_decls;
    std::vector<std::pair<int, std::string>> d1_decl_findings;
    std::set<std::string> benign_names;
    std::vector<MutableDecl> mutable_decls;
    std::map<std::string, std::vector<Signature>> signatures;
};

struct GlobalModel
{
    std::map<std::string, ContainerDecl> containers_by_name;
    std::set<std::string> benign_names;
    std::map<std::string, std::vector<OwnedSymbol>> owned;
    std::map<std::string, std::vector<Signature>> signatures;
    /** reach[i] = view indexes transitively included by view i
     *  (always contains i itself). */
    std::vector<std::set<size_t>> reach;
};

const std::set<std::string> &
unitSuffixes()
{
    static const std::set<std::string> kSuffixes = {
        "ns", "us", "ms", "sec", "bytes", "sectors", "lba"};
    return kSuffixes;
}

/** Unit suffix of an identifier (`delay_us` -> "us"), or "". */
std::string
unitSuffix(const std::string &name)
{
    size_t us = name.rfind('_');
    if (us == std::string::npos || us + 1 >= name.size())
        return "";
    std::string tail = name.substr(us + 1);
    return unitSuffixes().count(tail) != 0 ? tail : "";
}

// --- D1: pointer-keyed unordered containers ---------------------------

/** Collect pointer-keyed unordered_{map,set} declarations + findings. */
void
collectPointerKeyedContainers(const FileView &view, FileFacts &facts)
{
    const std::vector<Token> &code = view.code;
    for (size_t i = 0; i + 1 < code.size(); ++i) {
        bool is_map = isIdent(code[i], "unordered_map");
        bool is_set = isIdent(code[i], "unordered_set") ||
                      isIdent(code[i], "unordered_multiset");
        bool is_multimap = isIdent(code[i], "unordered_multimap");
        if (!is_map && !is_set && !is_multimap)
            continue;
        if (code[i + 1].text != "<")
            continue;

        bool key_ptr = false;
        bool any_ptr = false;
        size_t after = scanTemplateArgs(code, i + 1, &key_ptr, &any_ptr);
        bool ptr_key = (is_map || is_multimap) ? key_ptr : any_ptr;
        if (!ptr_key || after >= code.size())
            continue;
        if (code[after].kind != TokKind::kIdent)
            continue; // temporary / return type / cast — no variable name
        if (after + 1 < code.size() && code[after + 1].text == "(")
            continue; // function declaration returning the container

        facts.d1_decls.push_back(
            {code[after].text, view.path, code[after].line});
        facts.d1_decl_findings.push_back(
            {code[i].line,
             "'" + code[after].text +
                 "' is a pointer-keyed unordered container; its "
                 "iteration order is heap-address order and differs "
                 "across runs"});
    }
}

/**
 * Collect names that are *also* declared as a deterministic container
 * somewhere in the set. A name with both a pointer-keyed unordered
 * declaration and a benign one is ambiguous, and iteration in a file
 * other than the unordered declaration's is not flagged — otherwise a
 * `deque<T> states_` in one class would be blamed for an
 * `unordered_map<K*,V> states_` in another.
 */
void
collectBenignContainerNames(const FileView &view,
                            std::set<std::string> &benign)
{
    static const std::set<std::string> kOrderedContainers = {
        "vector", "deque", "list", "forward_list", "array",
        "map", "set", "multimap", "multiset", "span", "RingDeque"};
    const std::vector<Token> &code = view.code;
    for (size_t i = 0; i + 1 < code.size(); ++i) {
        if (code[i].kind != TokKind::kIdent ||
            kOrderedContainers.count(code[i].text) == 0)
            continue;
        if (code[i + 1].text != "<")
            continue;
        size_t after = scanTemplateArgs(code, i + 1, nullptr, nullptr);
        if (after >= code.size() || code[after].kind != TokKind::kIdent)
            continue;
        if (after + 1 < code.size() && code[after + 1].text == "(")
            continue;
        benign.insert(code[after].text);
    }
}

/** Flag iteration over any registered pointer-keyed container name. */
void
checkD1Iteration(FileView &view, const GlobalModel &model,
                 FileResult &out)
{
    auto ambiguous = [&](const ContainerDecl &d, const std::string &name) {
        return d.file != view.path &&
               model.benign_names.count(name) != 0;
    };
    const std::vector<Token> &code = view.code;
    for (size_t i = 0; i < code.size(); ++i) {
        // Range-for: `for (decl : name)` where the range expression is a
        // plain (possibly member-qualified) registered name.
        if (isIdent(code[i], "for") && i + 1 < code.size() &&
            code[i + 1].text == "(") {
            size_t close = matchForward(code, i + 1, "(", ")");
            if (close == std::string::npos)
                continue;
            size_t colon = std::string::npos;
            int depth = 0;
            for (size_t k = i + 1; k < close; ++k) {
                if (code[k].text == "(" || code[k].text == "[")
                    ++depth;
                else if (code[k].text == ")" || code[k].text == "]")
                    --depth;
                else if (depth == 1 && code[k].text == ":" &&
                         k > i + 1 && code[k - 1].text != ":")
                    colon = k;
            }
            if (colon == std::string::npos)
                continue;
            bool has_call = false;
            std::string last_ident;
            for (size_t k = colon + 1; k < close; ++k) {
                if (code[k].text == "(")
                    has_call = true;
                if (code[k].kind == TokKind::kIdent)
                    last_ident = code[k].text;
            }
            auto it = model.containers_by_name.find(last_ident);
            if (!has_call && it != model.containers_by_name.end() &&
                !ambiguous(it->second, last_ident)) {
                emit(out, view, code[i].line, "D1",
                     "range-for over pointer-keyed unordered container '" +
                         last_ident + "' (declared at " + it->second.file +
                         ":" + std::to_string(it->second.line) +
                         ") visits elements in address order");
            }
            continue;
        }
        // Iterator loop: `name.begin()` / `name.cbegin()`.
        if (code[i].kind == TokKind::kIdent && i + 2 < code.size() &&
            code[i + 1].text == "." &&
            (isIdent(code[i + 2], "begin") ||
             isIdent(code[i + 2], "cbegin"))) {
            auto it = model.containers_by_name.find(code[i].text);
            if (it != model.containers_by_name.end() &&
                !ambiguous(it->second, code[i].text)) {
                emit(out, view, code[i].line, "D1",
                     "iterator walk over pointer-keyed unordered "
                     "container '" +
                         code[i].text + "' (declared at " +
                         it->second.file + ":" +
                         std::to_string(it->second.line) +
                         ") visits elements in address order");
            }
        }
    }
}

// --- D2: wall clock and ambient entropy -------------------------------

void
checkD2(FileView &view, FileResult &out)
{
    if (pathIsRngHeader(view.path))
        return;
    const std::vector<Token> &code = view.code;
    static const std::set<std::string> kClockTypes = {
        "system_clock", "steady_clock", "high_resolution_clock",
        "random_device"};
    static const std::set<std::string> kEntropyCalls = {
        "time", "clock", "rand", "srand", "gettimeofday", "timespec_get",
        "getentropy", "clock_gettime"};

    for (size_t i = 0; i < code.size(); ++i) {
        const Token &t = code[i];
        if (t.kind != TokKind::kIdent)
            continue;
        if (kClockTypes.count(t.text) != 0) {
            emit(out, view, t.line, "D2",
                 "'" + t.text +
                     "' reads ambient time/entropy; simulation state "
                     "must come from Simulator::now() or the seeded Rng");
            continue;
        }
        if (kEntropyCalls.count(t.text) != 0 && i + 1 < code.size() &&
            code[i + 1].text == "(") {
            if (i > 0) {
                const std::string &prev = code[i - 1].text;
                if (prev == "." || prev == "->")
                    continue; // member call on some object, not libc
                if (prev == "::" &&
                    !(i >= 2 && isIdent(code[i - 2], "std")))
                    continue; // qualified call into project code
                // A type name (or declarator punctuation) before the
                // identifier makes this a declaration, not a call.
                static const std::set<std::string> kCallContexts = {
                    "return", "co_return", "case", "else", "do"};
                if (code[i - 1].kind == TokKind::kIdent &&
                    kCallContexts.count(prev) == 0 && prev != "std")
                    continue;
                if (prev == "*" || prev == "&" || prev == ">")
                    continue; // `int *time(...)`-style declarator
            }
            emit(out, view, t.line, "D2",
                 "call to '" + t.text +
                     "()' injects wall-clock/entropy into the run");
        }
    }
}

// --- D3: pointer comparisons in comparators ---------------------------

void
checkD3(FileView &view, FileResult &out)
{
    const std::vector<Token> &code = view.code;
    static const std::set<std::string> kCmp = {"<", ">", "<=", ">="};

    for (size_t i = 0; i < code.size(); ++i) {
        // std::less<T *> — ordering functor over raw pointers.
        if (isIdent(code[i], "less") && i + 1 < code.size() &&
            code[i + 1].text == "<") {
            bool any_ptr = false;
            scanTemplateArgs(code, i + 1, nullptr, &any_ptr);
            if (any_ptr) {
                emit(out, view, code[i].line, "D3",
                     "std::less over a pointer type orders by address");
            }
            continue;
        }

        // A parameter list directly followed by `{` — function or
        // lambda body. Collect pointer-typed parameter names, then flag
        // bare `p OP q` comparisons between them inside the body.
        if (code[i].text != "(")
            continue;
        size_t close = matchForward(code, i, "(", ")");
        if (close == std::string::npos || close + 1 >= code.size())
            continue;
        if (code[close + 1].text != "{")
            continue;

        // Split the parameter list on top-level commas; a chunk with a
        // `*` declares a pointer parameter whose name is its last ident.
        std::set<std::string> ptr_params;
        {
            int depth = 0;
            bool has_ptr = false;
            std::string last_ident;
            auto flush = [&] {
                if (has_ptr && !last_ident.empty())
                    ptr_params.insert(last_ident);
                has_ptr = false;
                last_ident.clear();
            };
            for (size_t k = i + 1; k < close; ++k) {
                const std::string &t = code[k].text;
                if (t == "(" || t == "<" || t == "[") {
                    ++depth;
                } else if (t == ")" || t == ">" || t == "]") {
                    --depth;
                } else if (depth == 0 && t == ",") {
                    flush();
                    continue;
                }
                if (depth == 0 && t == "*")
                    has_ptr = true;
                if (depth == 0 && code[k].kind == TokKind::kIdent)
                    last_ident = code[k].text;
            }
            flush();
        }
        if (ptr_params.empty())
            continue;

        size_t body_end = matchForward(code, close + 1, "{", "}");
        if (body_end == std::string::npos)
            continue;
        for (size_t k = close + 2; k + 1 < body_end; ++k) {
            if (kCmp.count(code[k].text) == 0)
                continue;
            const Token &lhs = code[k - 1];
            const Token &rhs = code[k + 1];
            if (lhs.kind != TokKind::kIdent ||
                rhs.kind != TokKind::kIdent)
                continue;
            if (ptr_params.count(lhs.text) == 0 ||
                ptr_params.count(rhs.text) == 0)
                continue;
            // Bare pointers only: not `a->x < b->x` or `f(a) < g(b)`.
            if (k >= 2) {
                const std::string &before = code[k - 2].text;
                if (before == "->" || before == "." || before == "::")
                    continue;
            }
            if (k + 2 < body_end) {
                const std::string &after = code[k + 2].text;
                if (after == "->" || after == "." || after == "::" ||
                    after == "(" || after == "[")
                    continue;
            }
            emit(out, view, code[k].line, "D3",
                 "comparator orders '" + lhs.text + "' and '" + rhs.text +
                     "' by pointer value");
        }
    }
}

// --- D4 / P1 fact collection: mutable global & static state -----------

/**
 * Scan a file for mutable namespace-scope or static/thread_local
 * declarations. D4 emits them (src/ only); P1 registers the
 * namespace-scope ones as domain-owned state.
 */
std::vector<MutableDecl>
collectMutableDecls(const FileView &view)
{
    std::vector<MutableDecl> out;
    const std::vector<Token> &code = view.code;

    enum class ScopeKind { kNamespace, kClass, kFunction };
    std::vector<ScopeKind> scopes;
    static const std::set<std::string> kScopeClassKw = {"class", "struct",
                                                       "union", "enum"};
    static const std::set<std::string> kSkipLeads = {
        "using", "typedef", "template", "friend", "extern",
        "static_assert", "namespace", "class", "struct", "enum", "union",
        "concept", "public", "private", "protected", "return", "if",
        "for", "while", "switch", "do", "goto", "case", "default",
        "break", "continue", "throw", "delete"};

    auto atNamespaceScope = [&] {
        for (ScopeKind s : scopes) {
            if (s != ScopeKind::kNamespace)
                return false;
        }
        return true;
    };

    auto evalStatement = [&](size_t begin, size_t end) {
        if (begin >= end)
            return;
        const Token &first = code[begin];
        if (first.kind != TokKind::kIdent &&
            !(first.kind == TokKind::kPunct && first.text == "*"))
            return;
        if (kSkipLeads.count(first.text) != 0)
            return;

        bool has_static = false;
        bool has_thread_local = false;
        bool has_const = false;
        bool has_operator = false;
        size_t first_assign = end;
        for (size_t k = begin; k < end; ++k) {
            const std::string &t = code[k].text;
            if (t == "static")
                has_static = true;
            else if (t == "thread_local")
                has_thread_local = true;
            else if (t == "const" || t == "constexpr" || t == "consteval")
                has_const = true;
            else if (t == "operator")
                has_operator = true;
            else if (t == "=" && first_assign == end)
                first_assign = k;
        }
        if (has_const || has_operator)
            return;
        for (size_t k = begin; k < first_assign; ++k) {
            if (code[k].text == "(")
                return; // function declaration / definition
        }

        ScopeKind scope = scopes.empty() ? ScopeKind::kNamespace
                                         : scopes.back();
        bool namespace_scope =
            scopes.empty() ||
            (scope == ScopeKind::kNamespace && atNamespaceScope());
        bool flagged = false;
        if (namespace_scope)
            flagged = true; // any mutable namespace-scope variable
        else if (has_static || has_thread_local)
            flagged = true; // static member / function-local static
        if (!flagged)
            return;

        // Declared name: identifier right before `=`, `{`, `[` or `;`.
        std::string name;
        for (size_t k = begin; k < end; ++k) {
            const std::string &t = code[k].text;
            if ((t == "=" || t == "{" || t == "[" || t == ";") && k > begin &&
                code[k - 1].kind == TokKind::kIdent) {
                name = code[k - 1].text;
                break;
            }
        }
        if (name.empty()) {
            if (code[end - 1].kind != TokKind::kIdent)
                return;
            name = code[end - 1].text;
        }
        out.push_back({name, first.line, begin, namespace_scope,
                       has_thread_local});
    };

    size_t stmt_start = 0;
    for (size_t i = 0; i < code.size(); ++i) {
        const std::string &t = code[i].text;
        if (t == "{") {
            // Classify the block from the statement tokens before it.
            bool kw_namespace = false;
            bool kw_class = false;
            bool has_paren = false;
            for (size_t k = stmt_start; k < i; ++k) {
                if (isIdent(code[k], "namespace"))
                    kw_namespace = true;
                else if (code[k].kind == TokKind::kIdent &&
                         kScopeClassKw.count(code[k].text) != 0)
                    kw_class = true;
                else if (code[k].text == "(" || code[k].text == ")")
                    has_paren = true;
            }
            const std::string prev =
                i > stmt_start ? code[i - 1].text : std::string();
            if (kw_namespace) {
                scopes.push_back(ScopeKind::kNamespace);
                stmt_start = i + 1;
            } else if (kw_class && !has_paren) {
                scopes.push_back(ScopeKind::kClass);
                stmt_start = i + 1;
            } else if (has_paren) {
                scopes.push_back(ScopeKind::kFunction);
                stmt_start = i + 1;
            } else if (!prev.empty() &&
                       (code[i - 1].kind == TokKind::kIdent || prev == "=" ||
                        prev == "," || prev == ">")) {
                // Brace initializer `Type name{...}`: stay in the
                // statement, skip to the matching close.
                size_t close = matchForward(code, i, "{", "}");
                if (close == std::string::npos)
                    break;
                i = close;
            } else {
                scopes.push_back(ScopeKind::kFunction);
                stmt_start = i + 1;
            }
        } else if (t == "}") {
            if (!scopes.empty())
                scopes.pop_back();
            stmt_start = i + 1;
        } else if (t == ";") {
            evalStatement(stmt_start, i);
            stmt_start = i + 1;
        }
    }
    return out;
}

void
checkD4(FileView &view, const std::vector<MutableDecl> &decls,
        FileResult &out)
{
    if (!pathHasSrcComponent(view.path))
        return;
    for (const MutableDecl &d : decls) {
        const char *what = d.namespace_scope
                               ? "mutable namespace-scope state"
                               : (d.thread_local_
                                      ? "mutable thread_local state"
                                      : "mutable static state");
        emit(out, view, d.line, "D4",
             std::string(what) + " '" + d.name +
                 "' breaks shared-nothing sweep workers");
    }
}

// --- D5 / P3: order-dependent accumulation ----------------------------

/** Float/double variable declarations, by name -> decl token indexes. */
std::map<std::string, std::vector<size_t>>
collectFloatDecls(const FileView &view)
{
    std::map<std::string, std::vector<size_t>> fp_decls;
    const std::vector<Token> &code = view.code;
    for (size_t i = 0; i + 1 < code.size(); ++i) {
        if (!isIdent(code[i], "double") && !isIdent(code[i], "float"))
            continue;
        if (code[i + 1].kind != TokKind::kIdent)
            continue;
        if (i + 2 < code.size() && code[i + 2].text == "(")
            continue; // function returning double
        fp_decls[code[i + 1].text].push_back(i);
    }
    return fp_decls;
}

/** Container variable declarations, by name -> decl token indexes. */
std::map<std::string, std::vector<size_t>>
collectContainerDecls(const FileView &view)
{
    static const std::set<std::string> kContainers = {
        "vector", "deque", "list", "forward_list", "map", "set",
        "multimap", "multiset", "string", "unordered_map",
        "unordered_set", "unordered_multimap", "unordered_multiset",
        "RingDeque"};
    std::map<std::string, std::vector<size_t>> decls;
    const std::vector<Token> &code = view.code;
    for (size_t i = 0; i + 1 < code.size(); ++i) {
        if (code[i].kind != TokKind::kIdent ||
            kContainers.count(code[i].text) == 0)
            continue;
        size_t after = i + 1;
        if (code[after].text == "<")
            after = scanTemplateArgs(code, after, nullptr, nullptr);
        if (after >= code.size() || code[after].kind != TokKind::kIdent)
            continue;
        if (after + 1 < code.size() && code[after + 1].text == "(")
            continue;
        decls[code[after].text].push_back(i);
    }
    return decls;
}

/**
 * Walk back from the compound-assignment / call token at `i` to the
 * root identifier of the target expression (`total`, `this->total`,
 * `acc.sum`, `slots[i].v`, ...). Returns "" when there is none.
 */
std::string
rootIdentifierBefore(const std::vector<Token> &code, size_t i,
                     size_t floor)
{
    size_t j = i;
    std::string root;
    while (j > floor) {
        --j;
        const std::string &t = code[j].text;
        if (t == "]" || t == ")") {
            const char *opn = t == "]" ? "[" : "(";
            int d = 0;
            while (j > floor) {
                if (code[j].text == t)
                    ++d;
                else if (code[j].text == opn && --d == 0)
                    break;
                --j;
            }
            continue;
        }
        if (code[j].kind == TokKind::kIdent) {
            root = code[j].text;
            if (j > floor + 1 &&
                (code[j - 1].text == "." || code[j - 1].text == "->" ||
                 code[j - 1].text == "::")) {
                --j;
                continue;
            }
            break;
        }
        break;
    }
    return root;
}

/** True when `name` is declared in `decls` before the region starts
 *  and not re-declared inside the region before token `use`. */
bool
declaredOutsideRegion(const std::map<std::string, std::vector<size_t>> &decls,
                      const std::string &name, const Region &region,
                      size_t use)
{
    auto it = decls.find(name);
    if (it == decls.end())
        return false;
    bool before = false;
    bool inside = false;
    for (size_t decl : it->second) {
        if (decl < region.begin)
            before = true;
        else if (decl > region.begin && decl < use)
            inside = true;
    }
    return before && !inside;
}

void
checkD5(FileView &view, FileResult &out)
{
    bool any_parallel = false;
    for (const Region &r : view.regions)
        any_parallel = any_parallel || r.parallel;
    if (!any_parallel)
        return;
    const std::vector<Token> &code = view.code;
    std::map<std::string, std::vector<size_t>> fp_decls =
        collectFloatDecls(view);
    if (fp_decls.empty())
        return;

    static const std::set<std::string> kAccum = {"+=", "-=", "*=", "/="};
    for (const Region &region : view.regions) {
        if (!region.parallel)
            continue;
        for (size_t i = region.begin + 1; i < region.end; ++i) {
            if (kAccum.count(code[i].text) == 0)
                continue;
            if (lineInRanges(view.merge_ordered_lines, code[i].line))
                continue;
            std::string root =
                rootIdentifierBefore(code, i, region.begin);
            if (root.empty() ||
                !declaredOutsideRegion(fp_decls, root, region, i))
                continue;
            emit(out, view, code[i].line, "D5",
                 "floating-point accumulation into '" + root +
                     "' declared outside the parallel region: summation "
                     "order depends on worker scheduling");
        }
    }
}

/**
 * P3: container pushes (any region kind) and float accumulation
 * (domain regions; parallel-region floats stay D5's) into state
 * declared outside the region, without a merge-ordered marker.
 */
void
checkP3(FileView &view, FileResult &out)
{
    if (view.regions.empty())
        return;
    const std::vector<Token> &code = view.code;
    std::map<std::string, std::vector<size_t>> fp_decls =
        collectFloatDecls(view);
    std::map<std::string, std::vector<size_t>> container_decls =
        collectContainerDecls(view);

    static const std::set<std::string> kPush = {
        "push_back", "emplace_back", "push_front", "emplace_front",
        "push", "emplace", "insert", "append"};
    static const std::set<std::string> kAccum = {"+=", "-=", "*=", "/="};

    for (const Region &region : view.regions) {
        const bool domain_region = !region.domain.empty();
        if (!region.parallel && !domain_region)
            continue;
        const char *where = domain_region ? "domain" : "parallel";
        for (size_t i = region.begin + 1; i < region.end; ++i) {
            if (lineInRanges(view.merge_ordered_lines, code[i].line))
                continue;
            // Container push: `target.push_back(...)`.
            if (code[i].kind == TokKind::kIdent &&
                kPush.count(code[i].text) != 0 && i + 1 < code.size() &&
                code[i + 1].text == "(" && i > region.begin + 1 &&
                (code[i - 1].text == "." || code[i - 1].text == "->")) {
                std::string root =
                    rootIdentifierBefore(code, i - 1, region.begin);
                if (!root.empty() &&
                    declaredOutsideRegion(container_decls, root, region,
                                          i)) {
                    emit(out, view, code[i].line, "P3",
                         "'" + code[i].text + "' into container '" +
                             root + "' declared outside the " + where +
                             " region: element order depends on "
                             "execution interleaving (mark `// isol: "
                             "merge-ordered` if the merge layer sorts)");
                }
                continue;
            }
            // Float accumulation inside domain regions (parallel
            // regions keep the historical D5 id for this hazard).
            if (domain_region && kAccum.count(code[i].text) != 0) {
                std::string root =
                    rootIdentifierBefore(code, i, region.begin);
                if (!root.empty() &&
                    declaredOutsideRegion(fp_decls, root, region, i)) {
                    emit(out, view, code[i].line, "P3",
                         "floating-point accumulation into '" + root +
                             "' declared outside the domain region: "
                             "the shard merge order decides the sum");
                }
            }
        }
    }
}

// --- P1: cross-domain mutable-state references ------------------------

void
checkP1(FileView &view, size_t view_idx, const GlobalModel &model,
        FileResult &out)
{
    if (model.owned.empty())
        return;
    const std::vector<Token> &code = view.code;
    for (size_t i = 0; i < code.size(); ++i) {
        const Token &t = code[i];
        if (t.kind != TokKind::kIdent)
            continue;
        auto it = model.owned.find(t.text);
        if (it == model.owned.end())
            continue;
        if (i > 0 &&
            (code[i - 1].text == "." || code[i - 1].text == "->"))
            continue; // member access, not the namespace-scope symbol
        std::string my_domain = domainAt(view, i);
        if (my_domain.empty())
            continue; // un-annotated code is outside the sharding plan
        bool same_domain_candidate = false;
        const OwnedSymbol *foreign = nullptr;
        for (const OwnedSymbol &sym : it->second) {
            if (sym.view == view_idx && sym.line == t.line)
                continue; // the declaration itself
            if (sym.domain == my_domain) {
                same_domain_candidate = true;
                break;
            }
            if (!sym.shared && foreign == nullptr &&
                model.reach[view_idx].count(sym.view) != 0)
                foreign = &sym;
        }
        if (same_domain_candidate || foreign == nullptr)
            continue;
        emit(out, view, t.line, "P1",
             "'" + t.text + "' is mutable state owned by domain '" +
                 foreign->domain + "' (" + foreign->file + ":" +
                 std::to_string(foreign->line) +
                 ") but referenced from domain '" + my_domain +
                 "': a shard must not reach into another shard's state");
    }
}

// --- P2: by-reference captures escaping into deferred callbacks -------

void
checkP2(FileView &view, size_t view_idx, const GlobalModel &model,
        FileResult &out)
{
    const std::vector<Token> &code = view.code;
    static const std::set<std::string> kSinks = {"at", "after",
                                                 "schedule", "defer",
                                                 "post"};
    for (size_t i = 0; i + 1 < code.size(); ++i) {
        if (code[i].kind != TokKind::kIdent ||
            kSinks.count(code[i].text) == 0 || code[i + 1].text != "(")
            continue;
        if (i > 0 && code[i - 1].kind == TokKind::kIdent)
            continue; // declaration of a function with a sink name
        bool in_scope = !domainAt(view, i).empty() ||
                        insideParallelRegion(view, i);
        if (!in_scope)
            continue;
        size_t close = std::string::npos;
        auto chunks = splitTopLevel(code, i + 1, &close);
        for (const auto &[begin, end] : chunks) {
            if (begin >= end || code[begin].text != "[")
                continue; // not a lambda argument
            size_t cap_close = matchForward(code, begin, "[", "]");
            if (cap_close == std::string::npos || cap_close >= end)
                continue;
            // Walk the capture list's top-level elements.
            size_t k = begin + 1;
            int depth = 0;
            bool elem_start = true;
            while (k < cap_close) {
                const std::string &txt = code[k].text;
                if (txt == "[" || txt == "(" || txt == "{") {
                    ++depth;
                } else if (txt == "]" || txt == ")" || txt == "}") {
                    --depth;
                } else if (depth == 0 && txt == ",") {
                    elem_start = true;
                    ++k;
                    continue;
                }
                if (depth == 0 && elem_start && txt == "&") {
                    bool named = k + 1 < cap_close &&
                                 code[k + 1].kind == TokKind::kIdent;
                    if (!named) {
                        emit(out, view, code[k].line, "P2",
                             "deferred callback passed to '" +
                                 code[i].text +
                                 "()' default-captures by reference; "
                                 "the callback outlives this frame");
                    } else {
                        const std::string &cap = code[k + 1].text;
                        auto oit = model.owned.find(cap);
                        if (oit != model.owned.end()) {
                            std::string my_domain = domainAt(view, k);
                            for (const OwnedSymbol &sym : oit->second) {
                                if (sym.shared ||
                                    sym.domain == my_domain ||
                                    model.reach[view_idx].count(
                                        sym.view) == 0)
                                    continue;
                                emit(out, view, code[k].line, "P2",
                                     "deferred callback by-reference "
                                     "captures '" +
                                         cap + "' owned by domain '" +
                                         sym.domain + "' (" + sym.file +
                                         ":" +
                                         std::to_string(sym.line) +
                                         ")");
                                break;
                            }
                        }
                    }
                }
                elem_start = false;
                ++k;
            }
        }
    }
}

// --- U1: unit-safety at call boundaries -------------------------------

/** Collect unit-carrying function signatures from parameter lists. */
void
collectSignatures(const FileView &view, FileFacts &facts)
{
    const std::vector<Token> &code = view.code;
    static const std::set<std::string> kNotFunctions = {
        "if", "for", "while", "switch", "return", "sizeof", "catch",
        "alignof", "decltype", "noexcept", "static_assert", "assert"};
    for (size_t i = 0; i + 1 < code.size(); ++i) {
        if (code[i].kind != TokKind::kIdent ||
            kNotFunctions.count(code[i].text) != 0 ||
            code[i + 1].text != "(")
            continue;
        auto chunks = splitTopLevel(code, i + 1, nullptr);
        if (chunks.empty())
            continue;

        Signature sig;
        sig.file = view.path;
        bool all_param_shaped = true;
        bool any_unit = false;
        sig.min_arity = chunks.size();
        for (size_t c = 0; c < chunks.size(); ++c) {
            auto [begin, end] = chunks[c];
            bool is_time = false;
            bool defaulted = false;
            size_t ident_count = 0;
            std::string last_ident;
            bool shaped = begin < end;
            for (size_t k = begin; k < end; ++k) {
                const Token &t = code[k];
                if (t.text == "=") {
                    defaulted = true;
                    break; // default argument: rest is an expression
                }
                if (t.kind == TokKind::kIdent) {
                    ++ident_count;
                    last_ident = t.text;
                    if (t.text == "SimTime")
                        is_time = true;
                    continue;
                }
                if (t.kind == TokKind::kNumber)
                    continue;
                static const std::set<std::string> kDeclPunct = {
                    "::", "<", ">", ">>", "*", "&", "&&", "[", "]",
                    "...", "."};
                if (t.kind != TokKind::kPunct ||
                    kDeclPunct.count(t.text) == 0) {
                    shaped = false;
                    break;
                }
            }
            if (!shaped || ident_count < 2) {
                // `foo(SimTime)` — unnamed param — still counts as a
                // parameter declaration shape-wise, but carries no
                // name to unit-check; other shapes disqualify.
                if (!(shaped && ident_count == 1)) {
                    all_param_shaped = false;
                    break;
                }
                last_ident.clear();
            }
            if (defaulted && c < sig.min_arity)
                sig.min_arity = c;
            std::string suffix =
                ident_count >= 2 ? unitSuffix(last_ident) : "";
            sig.is_time.push_back(is_time);
            sig.unit.push_back(suffix);
            sig.param_name.push_back(ident_count >= 2 ? last_ident
                                                      : "");
            any_unit = any_unit || is_time || !suffix.empty();
        }
        if (!all_param_shaped || !any_unit)
            continue;
        facts.signatures[code[i].text].push_back(std::move(sig));
    }
}

/** Integer value of a numeric literal token (0 on parse failure). */
unsigned long long
literalValue(const std::string &text)
{
    std::string cleaned;
    for (char c : text) {
        if (c != '\'')
            cleaned += c;
    }
    return std::strtoull(cleaned.c_str(), nullptr, 0);
}

void
checkU1(FileView &view, const GlobalModel &model, FileResult &out)
{
    const std::vector<Token> &code = view.code;
    static const std::set<std::string> kCallContexts = {
        "return", "co_return", "case", "else", "do"};
    for (size_t i = 0; i + 1 < code.size(); ++i) {
        if (code[i].kind != TokKind::kIdent ||
            code[i + 1].text != "(")
            continue;
        auto sit = model.signatures.find(code[i].text);
        if (sit == model.signatures.end())
            continue;
        if (i > 0) {
            const std::string &prev = code[i - 1].text;
            if (code[i - 1].kind == TokKind::kIdent &&
                kCallContexts.count(prev) == 0)
                continue; // `EventId after(...)` — a declaration
            if (prev == ">" || prev == "*" || prev == "&")
                continue; // declarator / template return type
        }
        auto chunks = splitTopLevel(code, i + 1, nullptr);
        for (size_t p = 0; p < chunks.size(); ++p) {
            auto [begin, end] = chunks[p];
            if (end != begin + 1)
                continue; // only single-token arguments are judged
            const Token &arg = code[begin];

            // Verdicts must be unanimous across all signatures of this
            // name that the call's arity can bind to.
            size_t matched = 0;
            size_t time_votes = 0;
            std::set<std::string> target_units;
            std::set<std::string> target_params;
            for (const Signature &sig : sit->second) {
                if (chunks.size() < sig.min_arity ||
                    chunks.size() > sig.is_time.size())
                    continue;
                ++matched;
                if (sig.is_time[p])
                    ++time_votes;
                std::string unit = sig.unit[p];
                if (unit.empty() && sig.is_time[p])
                    unit = "ns"; // SimTime's contract is nanoseconds
                target_units.insert(unit);
                if (!sig.param_name[p].empty())
                    target_params.insert(sig.param_name[p]);
            }
            if (matched == 0)
                continue;
            std::string pname = target_params.empty()
                                    ? std::string("#") +
                                          std::to_string(p + 1)
                                    : *target_params.begin();

            if (arg.kind == TokKind::kNumber &&
                time_votes == matched &&
                literalValue(arg.text) != 0) {
                emit(out, view, arg.line, "U1",
                     "raw integer literal " + arg.text +
                         " passed to SimTime parameter '" + pname +
                         "' of " + code[i].text +
                         "(): wrap it in nsToNs()/usToNs()/msToNs() so "
                         "the unit is explicit");
                continue;
            }
            if (arg.kind == TokKind::kIdent && target_units.size() == 1 &&
                !target_units.begin()->empty()) {
                const std::string &want = *target_units.begin();
                std::string have = unitSuffix(arg.text);
                if (!have.empty() && have != want) {
                    emit(out, view, arg.line, "U1",
                         "argument '" + arg.text + "' (unit _" + have +
                             ") bound to parameter '" + pname +
                             "' (unit _" + want + ") of " +
                             code[i].text +
                             "(): convert explicitly at the boundary");
                }
            }
        }
    }
}

// --- Parallel driver ---------------------------------------------------

template <typename Fn>
void
forEachIndex(size_t n, unsigned jobs, Fn fn)
{
    if (jobs <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::atomic<size_t> next{0};
    auto worker = [&] {
        for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1))
            fn(i);
    };
    size_t nthreads = std::min<size_t>(jobs, n);
    std::vector<std::thread> threads;
    threads.reserve(nthreads - 1);
    for (size_t t = 1; t < nthreads; ++t)
        threads.emplace_back(worker);
    worker();
    for (std::thread &t : threads)
        t.join();
}

/** Resolve quoted includes against the file set (suffix matching). */
std::vector<std::set<size_t>>
computeReachability(const std::vector<FileView> &views)
{
    const size_t n = views.size();
    std::vector<std::vector<size_t>> edges(n);
    for (size_t i = 0; i < n; ++i) {
        for (const std::string &inc : views[i].includes) {
            for (size_t j = 0; j < n; ++j) {
                const std::string &p = views[j].path;
                if (p == inc ||
                    (p.size() > inc.size() + 1 &&
                     p.compare(p.size() - inc.size(), inc.size(), inc) ==
                         0 &&
                     p[p.size() - inc.size() - 1] == '/'))
                    edges[i].push_back(j);
            }
        }
    }
    std::vector<std::set<size_t>> reach(n);
    for (size_t i = 0; i < n; ++i) {
        std::vector<size_t> stack = {i};
        while (!stack.empty()) {
            size_t v = stack.back();
            stack.pop_back();
            if (!reach[i].insert(v).second)
                continue;
            for (size_t w : edges[v])
                stack.push_back(w);
        }
    }
    return reach;
}

} // namespace

const std::vector<RuleInfo> &
ruleTable()
{
    return kRules;
}

LintResult
lintFiles(const std::vector<FileInput> &files)
{
    return lintFiles(files, LintOptions{});
}

LintResult
lintFiles(const std::vector<FileInput> &files, const LintOptions &options)
{
    LintResult result;
    const bool fam_d = options.families.count('D') != 0;
    const bool fam_p = options.families.count('P') != 0;
    const bool fam_u = options.families.count('U') != 0;

    // Phase 1+2 (parallel): per-file views and facts.
    std::vector<FileView> views(files.size());
    std::vector<FileFacts> facts(files.size());
    forEachIndex(files.size(), options.jobs, [&](size_t i) {
        views[i] = buildView(files[i]);
        if (fam_d) {
            collectPointerKeyedContainers(views[i], facts[i]);
            collectBenignContainerNames(views[i],
                                        facts[i].benign_names);
        }
        if (fam_d || fam_p)
            facts[i].mutable_decls = collectMutableDecls(views[i]);
        if (fam_u)
            collectSignatures(views[i], facts[i]);
    });

    // Phase 3 (serial): the global program model.
    GlobalModel model;
    for (size_t i = 0; i < files.size(); ++i) {
        for (const ContainerDecl &d : facts[i].d1_decls)
            model.containers_by_name.emplace(d.name, d);
        model.benign_names.insert(facts[i].benign_names.begin(),
                                  facts[i].benign_names.end());
        for (const auto &[name, sigs] : facts[i].signatures) {
            auto &dst = model.signatures[name];
            dst.insert(dst.end(), sigs.begin(), sigs.end());
        }
        if (fam_p) {
            for (const MutableDecl &d : facts[i].mutable_decls) {
                if (!d.namespace_scope)
                    continue; // only globally reachable state shards
                std::string domain = domainAt(views[i], d.token);
                if (domain.empty())
                    continue; // file is outside the ownership map
                model.owned[d.name].push_back(
                    {d.name, views[i].path, domain, d.line, i,
                     lineInRanges(views[i].shared_lines, d.line)});
            }
        }
    }
    model.reach = fam_p ? computeReachability(views)
                        : std::vector<std::set<size_t>>(views.size());

    // Phase 4 (parallel): per-file rule checks.
    std::vector<FileResult> outs(files.size());
    forEachIndex(files.size(), options.jobs, [&](size_t i) {
        FileView &view = views[i];
        FileResult &out = outs[i];
        if (fam_d) {
            for (const auto &[line, message] :
                 facts[i].d1_decl_findings)
                emit(out, view, line, "D1", std::string(message));
            checkD1Iteration(view, model, out);
            checkD2(view, out);
            checkD3(view, out);
            checkD4(view, facts[i].mutable_decls, out);
            checkD5(view, out);
        }
        if (fam_p) {
            checkP1(view, i, model, out);
            checkP2(view, i, model, out);
            checkP3(view, out);
        }
        if (fam_u)
            checkU1(view, model, out);
    });

    // Phase 5 (serial): merge in input order, then sort.
    for (size_t i = 0; i < files.size(); ++i) {
        result.findings.insert(result.findings.end(),
                               outs[i].findings.begin(),
                               outs[i].findings.end());
        result.suppressed.insert(result.suppressed.end(),
                                 outs[i].suppressed.begin(),
                                 outs[i].suppressed.end());
        for (const Suppression &s : views[i].suppressions) {
            if (s.used)
                continue;
            bool reportable =
                s.rule == "*"
                    ? (fam_d && fam_p && fam_u)
                    : options.families.count(s.rule[0]) != 0;
            if (!reportable)
                continue;
            Finding f;
            f.file = views[i].path;
            f.line = s.comment_line;
            f.rule = s.rule;
            f.message = "suppression allow(" + s.rule +
                        ") matched no finding; the hazard it justified "
                        "is gone";
            f.hint = "delete the stale allow() comment";
            result.unused_suppressions.push_back(std::move(f));
        }
    }

    auto order = [](const Finding &a, const Finding &b) {
        if (a.file != b.file)
            return a.file < b.file;
        if (a.line != b.line)
            return a.line < b.line;
        return a.rule < b.rule;
    };
    std::stable_sort(result.findings.begin(), result.findings.end(),
                     order);
    std::stable_sort(result.suppressed.begin(), result.suppressed.end(),
                     order);
    std::stable_sort(result.unused_suppressions.begin(),
                     result.unused_suppressions.end(), order);
    return result;
}

} // namespace isol_lint
