/**
 * @file
 * SARIF 2.1.0 renderer for lint results.
 *
 * Hand-rolled (the repo is dependency-free) and deterministic: rules in
 * table order, results in the result's (already path/line sorted)
 * order, two-space indentation, no timestamps. GitHub code scanning
 * ingests the document via codeql-action/upload-sarif; suppressed
 * findings are emitted with an `inSource` suppression so the dashboard
 * shows them as reviewed rather than open.
 */

#include "lint.hh"

#include <cstdio>
#include <map>
#include <sstream>

namespace isol_lint
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
appendResult(std::ostringstream &out, const Finding &f,
             const std::map<std::string, size_t> &rule_index,
             bool suppressed, bool *first)
{
    if (!*first)
        out << ",";
    *first = false;
    auto it = rule_index.find(f.rule);
    size_t index = it != rule_index.end() ? it->second : 0;
    out << "\n        {"
        << "\n          \"ruleId\": \"" << jsonEscape(f.rule) << "\","
        << "\n          \"ruleIndex\": " << index << ","
        << "\n          \"level\": \"" << (suppressed ? "note" : "error")
        << "\","
        << "\n          \"message\": { \"text\": \""
        << jsonEscape(f.message) << "\" },"
        << "\n          \"locations\": [ {"
        << "\n            \"physicalLocation\": {"
        << "\n              \"artifactLocation\": { \"uri\": \""
        << jsonEscape(f.file) << "\" },"
        << "\n              \"region\": { \"startLine\": " << f.line
        << " }"
        << "\n            }"
        << "\n          } ]";
    if (suppressed)
        out << ",\n          \"suppressions\": [ { \"kind\": "
               "\"inSource\" } ]";
    out << "\n        }";
}

} // namespace

std::string
sarifReport(const LintResult &result)
{
    const std::vector<RuleInfo> &rules = ruleTable();
    std::map<std::string, size_t> rule_index;
    for (size_t i = 0; i < rules.size(); ++i)
        rule_index[rules[i].id] = i;

    std::ostringstream out;
    out << "{\n"
        << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0"
           ".json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [ {\n"
        << "    \"tool\": {\n"
        << "      \"driver\": {\n"
        << "        \"name\": \"isol_lint\",\n"
        << "        \"informationUri\": "
           "\"https://example.invalid/isol_lint\",\n"
        << "        \"rules\": [";
    for (size_t i = 0; i < rules.size(); ++i) {
        out << (i == 0 ? "" : ",") << "\n          {"
            << "\n            \"id\": \"" << jsonEscape(rules[i].id)
            << "\","
            << "\n            \"shortDescription\": { \"text\": \""
            << jsonEscape(rules[i].summary) << "\" },"
            << "\n            \"help\": { \"text\": \""
            << jsonEscape(rules[i].hint) << "\" }"
            << "\n          }";
    }
    out << "\n        ]\n"
        << "      }\n"
        << "    },\n"
        << "    \"results\": [";
    bool first = true;
    for (const Finding &f : result.findings)
        appendResult(out, f, rule_index, false, &first);
    for (const Finding &f : result.suppressed)
        appendResult(out, f, rule_index, true, &first);
    out << (first ? "]" : "\n    ]") << "\n  } ]\n}\n";
    return out.str();
}

} // namespace isol_lint
