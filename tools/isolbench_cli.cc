/**
 * @file
 * isolbench — command-line front end to isol-bench-sim.
 *
 * Lets a user compose a scenario without writing C++: pick a knob,
 * declare apps in fio-ish syntax, set cgroup knob values in kernel sysfs
 * syntax, run, and get a per-app report.
 *
 * Usage:
 *   isolbench [options] --app <spec> [--app <spec> ...]
 *
 * Options:
 *   --knob <none|mq-deadline|bfq|io.max|io.latency|io.cost|kyber>
 *   --cores <n>           CPU cores (default 10)
 *   --devices <n>         SSDs, apps round-robin (default 1)
 *   --device <flash|optane>
 *   --duration <ms>       run time (default 2000)
 *   --warmup <ms>         stats excluded before this (default 300)
 *   --precondition        steady-state fill before the run
 *   --seed <n>            RNG seed (default 1)
 *   --faults <off|media|thermal|all>
 *                         fault-injection profile (default off)
 *   --jobs <n>            sweep worker threads for parallel runners
 *                         (default: hardware concurrency)
 *   --retries <n>         extra attempts when the run fails (default 0)
 *   --task-timeout-ms <n> wall-clock watchdog for the run
 *   --task-max-events <n> simulated-event budget for the run
 *   --adversary <queue-flood|gc-storm|square-wave|flush-storm|slow-drain>
 *                         add a misbehaving tenant in cgroup "adv"
 *   --check-invariants    enable the runtime invariant checker
 *   --set <cgroup>:<file>=<value>
 *                         e.g. --set be:io.max="259:0 rbps=104857600"
 *   --csv                 emit CSV instead of an aligned table
 *
 * App spec: name=<s>,class=<lc|batch|be>,cgroup=<s>[,qd=<n>][,bs=<n|Nk>]
 *           [,rw=<read|write|mixed>][,seq][,rate=<bytes/s|Nm|Ng>]
 *           [,start=<ms>][,dur=<ms>][,count=<n>]
 *
 * Examples:
 *   isolbench --knob io.max \
 *     --app name=noisy,class=batch,cgroup=noisy \
 *     --app name=victim,class=lc,cgroup=victim \
 *     --set noisy:io.max="259:0 rbps=536870912"
 *
 *   isolbench --knob io.cost --app class=lc,cgroup=prio \
 *     --app class=be,cgroup=be,count=4 --set prio:io.weight=10000
 */

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/strings.hh"
#include "fault/fault.hh"
#include "isolbench/scenario.hh"
#include "isolbench/supervisor.hh"
#include "isolbench/sweep.hh"
#include "stats/fault_table.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

namespace
{

struct AppArg
{
    workload::JobSpec spec;
    std::string cgroup = "apps";
    uint32_t count = 1;
};

struct KnobWrite
{
    std::string cgroup;
    std::string file;
    std::string value;
};

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "isolbench: %s\n(run with --help for usage)\n",
                 msg.c_str());
    std::exit(2);
}

void
printUsage()
{
    std::puts(
        "isolbench - cgroup I/O-control isolation benchmark (simulated)\n"
        "\n"
        "  isolbench [options] --app <spec> [--app <spec> ...]\n"
        "\n"
        "options:\n"
        "  --knob none|mq-deadline|bfq|io.max|io.latency|io.cost|kyber\n"
        "  --cores N | --devices N | --device flash|optane\n"
        "  --duration MS | --warmup MS | --precondition | --seed N\n"
        "  --faults off|media|thermal|all\n"
        "  --jobs N   (sweep worker threads; default hw concurrency)\n"
        "  --retries N | --task-timeout-ms N | --task-max-events N\n"
        "  --adversary queue-flood|gc-storm|square-wave|flush-storm|\n"
        "              slow-drain    (misbehaving tenant in cgroup 'adv')\n"
        "  --check-invariants        (runtime invariant checker)\n"
        "  --set CGROUP:FILE=VALUE   (kernel sysfs syntax)\n"
        "  --csv\n"
        "\n"
        "app spec (comma-separated):\n"
        "  name=S class=lc|batch|be cgroup=S qd=N bs=N|Nk\n"
        "  rw=read|write|mixed seq rate=N|Nm|Ng start=MS dur=MS count=N");
}

std::optional<Knob>
parseKnob(const std::string &text)
{
    if (text == "none")
        return Knob::kNone;
    if (text == "mq-deadline")
        return Knob::kMqDeadline;
    if (text == "bfq")
        return Knob::kBfq;
    if (text == "io.max")
        return Knob::kIoMax;
    if (text == "io.latency")
        return Knob::kIoLatency;
    if (text == "io.cost")
        return Knob::kIoCost;
    if (text == "kyber")
        return Knob::kKyber;
    return std::nullopt;
}

AppArg
parseApp(const std::string &text, SimTime default_duration)
{
    AppArg app;
    app.spec = workload::batchApp("app", default_duration);
    bool class_set = false;
    for (const std::string &field : splitString(text, ',')) {
        std::string key = field;
        std::string value;
        size_t eq = field.find('=');
        if (eq != std::string::npos) {
            key = field.substr(0, eq);
            value = field.substr(eq + 1);
        }
        if (key == "name") {
            app.spec.name = value;
        } else if (key == "class") {
            class_set = true;
            if (value == "lc")
                app.spec = workload::lcApp(app.spec.name,
                                           default_duration);
            else if (value == "batch")
                app.spec = workload::batchApp(app.spec.name,
                                              default_duration);
            else if (value == "be")
                app.spec = workload::beApp(app.spec.name,
                                           default_duration);
            else
                usageError("unknown app class '" + value + "'");
        } else if (key == "cgroup") {
            app.cgroup = value;
        } else if (key == "qd") {
            auto parsed = parseUint(value);
            if (!parsed || *parsed == 0)
                usageError("bad qd '" + value + "'");
            app.spec.iodepth = static_cast<uint32_t>(*parsed);
        } else if (key == "bs") {
            auto parsed = parseSize(value);
            if (!parsed || *parsed == 0)
                usageError("bad bs '" + value + "'");
            app.spec.block_size = static_cast<uint32_t>(*parsed);
        } else if (key == "rw") {
            if (value == "read") {
                app.spec.read_fraction = 1.0;
            } else if (value == "write") {
                app.spec.op = OpType::kWrite;
                app.spec.read_fraction = 0.0;
            } else if (value == "mixed") {
                app.spec.read_fraction = 0.5;
            } else {
                usageError("bad rw '" + value + "'");
            }
        } else if (key == "seq") {
            app.spec.pattern = AccessPattern::kSequential;
        } else if (key == "rate") {
            auto parsed = parseSize(value);
            if (!parsed)
                usageError("bad rate '" + value + "'");
            app.spec.rate_bps = *parsed;
        } else if (key == "start") {
            auto parsed = parseUint(value);
            if (!parsed)
                usageError("bad start '" + value + "'");
            app.spec.start_time = msToNs(static_cast<int64_t>(*parsed));
        } else if (key == "dur") {
            auto parsed = parseUint(value);
            if (!parsed)
                usageError("bad dur '" + value + "'");
            app.spec.duration = msToNs(static_cast<int64_t>(*parsed));
        } else if (key == "count") {
            auto parsed = parseUint(value);
            if (!parsed || *parsed == 0)
                usageError("bad count '" + value + "'");
            app.count = static_cast<uint32_t>(*parsed);
        } else if (!key.empty()) {
            usageError("unknown app field '" + key + "'");
        }
    }
    (void)class_set;
    return app;
}

KnobWrite
parseSet(const std::string &text)
{
    size_t colon = text.find(':');
    size_t eq = text.find('=', colon == std::string::npos ? 0 : colon);
    if (colon == std::string::npos || eq == std::string::npos ||
        eq < colon) {
        usageError("--set expects CGROUP:FILE=VALUE, got '" + text + "'");
    }
    KnobWrite write;
    write.cgroup = text.substr(0, colon);
    write.file = text.substr(colon + 1, eq - colon - 1);
    write.value = text.substr(eq + 1);
    return write;
}

} // namespace

int
main(int argc, char **argv)
{
    ScenarioConfig cfg;
    cfg.name = "cli";
    cfg.duration = secToNs(int64_t{2});
    cfg.warmup = msToNs(300);

    std::vector<AppArg> apps;
    std::vector<KnobWrite> writes;
    bool csv = false;
    workload::AdversaryKind adversary = workload::AdversaryKind::kNone;
    supervisor::Options sup = supervisor::options();

    auto next_value = [&](int &i, const char *opt) -> std::string {
        if (i + 1 >= argc)
            usageError(strCat("missing value for ", opt));
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else if (arg == "--knob") {
            auto knob = parseKnob(next_value(i, "--knob"));
            if (!knob)
                usageError("unknown knob");
            cfg.knob = *knob;
        } else if (arg == "--cores") {
            auto parsed = parseUint(next_value(i, "--cores"));
            if (!parsed || *parsed == 0)
                usageError("bad --cores");
            cfg.num_cores = static_cast<uint32_t>(*parsed);
        } else if (arg == "--devices") {
            auto parsed = parseUint(next_value(i, "--devices"));
            if (!parsed || *parsed == 0)
                usageError("bad --devices");
            cfg.num_devices = static_cast<uint32_t>(*parsed);
        } else if (arg == "--device") {
            std::string device = next_value(i, "--device");
            if (device == "flash")
                cfg.device = ssd::samsung980ProLike();
            else if (device == "optane")
                cfg.device = ssd::optaneLike();
            else
                usageError("unknown --device (flash|optane)");
        } else if (arg == "--duration") {
            auto parsed = parseUint(next_value(i, "--duration"));
            if (!parsed || *parsed == 0)
                usageError("bad --duration");
            cfg.duration = msToNs(static_cast<int64_t>(*parsed));
        } else if (arg == "--warmup") {
            auto parsed = parseUint(next_value(i, "--warmup"));
            if (!parsed)
                usageError("bad --warmup");
            cfg.warmup = msToNs(static_cast<int64_t>(*parsed));
        } else if (arg == "--precondition") {
            cfg.precondition = true;
        } else if (arg == "--seed") {
            auto parsed = parseUint(next_value(i, "--seed"));
            if (!parsed)
                usageError("bad --seed");
            cfg.seed = *parsed;
        } else if (arg == "--faults") {
            auto profile = fault::parseProfile(next_value(i, "--faults"));
            if (!profile)
                usageError("bad --faults (off|media|thermal|all)");
            cfg.faults = fault::profileConfig(*profile);
        } else if (arg == "--jobs") {
            auto parsed = parseUint(next_value(i, "--jobs"));
            if (!parsed || *parsed == 0)
                usageError("bad --jobs");
            sweep::setDefaultJobs(static_cast<uint32_t>(*parsed));
        } else if (arg == "--retries") {
            auto parsed = parseUint(next_value(i, "--retries"));
            if (!parsed)
                usageError("bad --retries");
            sup.retries = static_cast<uint32_t>(*parsed);
        } else if (arg == "--task-timeout-ms") {
            auto parsed = parseUint(next_value(i, "--task-timeout-ms"));
            if (!parsed)
                usageError("bad --task-timeout-ms");
            sup.task_timeout_ms = static_cast<double>(*parsed);
        } else if (arg == "--task-max-events") {
            auto parsed = parseUint(next_value(i, "--task-max-events"));
            if (!parsed)
                usageError("bad --task-max-events");
            sup.max_task_events = *parsed;
        } else if (arg == "--adversary") {
            auto parsed =
                workload::parseAdversary(next_value(i, "--adversary"));
            if (!parsed)
                usageError("unknown --adversary (queue-flood|gc-storm|"
                           "square-wave|flush-storm|slow-drain|none)");
            adversary = *parsed;
        } else if (arg == "--check-invariants") {
            cfg.check_invariants = true;
        } else if (arg == "--app") {
            apps.push_back(parseApp(next_value(i, "--app"),
                                    cfg.duration - cfg.warmup +
                                        cfg.warmup));
        } else if (arg == "--set") {
            writes.push_back(parseSet(next_value(i, "--set")));
        } else if (arg == "--csv") {
            csv = true;
        } else {
            usageError("unknown option '" + arg + "'");
        }
    }

    if (apps.empty()) {
        printUsage();
        return 2;
    }

    try {
        struct Placed
        {
            uint32_t index;
            std::string name;
        };
        std::optional<Scenario> scenario_slot;
        std::vector<Placed> placed;
        auto buildAndRun = [&] {
            // A retry rebuilds the whole scenario: a Scenario runs once.
            scenario_slot.emplace(cfg);
            Scenario &scenario = *scenario_slot;
            placed.clear();
            uint32_t device_rr = 0;
            for (const AppArg &app : apps) {
                for (uint32_t c = 0; c < app.count; ++c) {
                    workload::JobSpec spec = app.spec;
                    if (app.count > 1)
                        spec.name = strCat(spec.name, c);
                    if (spec.duration == 0 ||
                        spec.start_time + spec.duration > cfg.duration) {
                        spec.duration = cfg.duration - spec.start_time;
                    }
                    std::string name = spec.name;
                    uint32_t idx = scenario.addApp(
                        std::move(spec), app.cgroup,
                        device_rr++ % cfg.num_devices);
                    placed.push_back(Placed{idx, name});
                }
            }
            if (adversary != workload::AdversaryKind::kNone)
                scenario.addAdversary(adversary, "adv");
            for (const KnobWrite &write : writes) {
                scenario.tree().writeFile(scenario.group(write.cgroup),
                                          write.file, write.value);
            }
            scenario.run();
        };

        if (sup.retries > 0 || sup.task_timeout_ms > 0.0 ||
            sup.max_task_events > 0) {
            // Supervised run: watchdog/event-budget guards plus retries,
            // so a wedged or invalid configuration fails with a
            // classified error instead of hanging the terminal.
            supervisor::setOptions(sup);
            supervisor::guardedMap<int>("cli", 1, [&](size_t) {
                buildAndRun();
                return 0;
            });
        } else {
            buildAndRun();
        }
        Scenario &scenario = *scenario_slot;

        stats::Table table({"app", "cgroup", "MiB/s", "IOPS",
                            "P50 us", "P99 us", "P99.9 us"});
        for (const Placed &p : placed) {
            const workload::FioJob &job = scenario.app(p.index);
            double secs = nsToSec(scenario.windowNs());
            table.addRow(
                {p.name, scenario.appGroup(p.index).name(),
                 formatDouble(job.windowBandwidth() /
                                  static_cast<double>(MiB), 1),
                 formatDouble(static_cast<double>(job.windowIos()) /
                                  secs, 0),
                 formatDouble(nsToUs(job.latency().percentile(50)), 1),
                 formatDouble(nsToUs(job.latency().percentile(99)), 1),
                 formatDouble(nsToUs(job.latency().percentile(99.9)),
                              1)});
        }
        std::fputs(csv ? table.toCsv().c_str()
                       : table.toAligned().c_str(),
                   stdout);
        std::printf("%saggregate %.2f GiB/s, CPU %.1f%%, knob %s\n",
                    csv ? "# " : "\n", scenario.aggregateGiBs(),
                    scenario.cpuUtilization() * 100.0,
                    knobName(cfg.knob));

        if (cfg.faults.any()) {
            std::puts("\nfault counters:");
            for (uint32_t d = 0; d < scenario.numDevices(); ++d) {
                stats::Table faults = stats::deviceFaultTable(
                    strCat("nvme", d), scenario.ssd(d).faultStats(),
                    scenario.device(d).faultStats());
                std::fputs(csv ? faults.toCsv().c_str()
                               : faults.toAligned().c_str(),
                           stdout);
            }
            stats::Table per_cg = stats::cgroupFaultTable(scenario.tree());
            if (per_cg.numRows() > 0) {
                std::fputs(csv ? per_cg.toCsv().c_str()
                               : per_cg.toAligned().c_str(),
                           stdout);
            }
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "isolbench: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        // SweepError (supervised run out of retries), invariant
        // violations from result validation, watchdog/budget aborts.
        std::fprintf(stderr, "isolbench: %s\n", e.what());
        return 1;
    }
    return 0;
}
