#!/usr/bin/env python3
"""Perf-regression gate over BENCH_micro.json.

Compares a freshly generated BENCH_micro.json (the candidate, produced
by running `bench/micro_components` in the build tree) against the
committed baseline at the repo root, and exits non-zero when any gated
metric regressed by more than the tolerance (default 15%).

Gated metrics:
  * throughput (higher is better): the current event queue's ops/sec on
    the mixed workload and on each horizon distribution, and the
    end-to-end sweep events/sec;
  * speedup ratios (higher is better): wheel vs seed and wheel vs the
    frozen 4-ary heap, overall and per horizon — ratios are robust to
    runner speed, so they catch real queue regressions even when the CI
    machine differs from the one that produced the baseline;
  * allocation counts (lower is better): wheel allocations per queue op
    must not grow beyond the baseline plus a small absolute slack.

A hard floor is also enforced: the clustered-horizon speedup over the
4-ary heap may never drop below --min-clustered-speedup (default 1.8;
the committed baseline is >= 2x, the floor leaves noise headroom).

With --fleet-sweep, the gate additionally reads a BENCH_sweep.json
produced by `bench/fleet_scale` and enforces an absolute events/sec
floor on every 1024-tenant per-scenario entry (names starting with
--fleet-prefix, default "fleet_t1024"). The floor is deliberately far
below the reference machine's numbers (io.cost ~330k, io.max ~2.5M
events/sec) so it only trips on gross bookkeeping blow-ups — e.g. a
per-cgroup walk going O(groups) instead of O(depth) — not on runner
speed.
"""

import argparse
import json
import sys

# (dotted path, higher_is_better)
RELATIVE_METRICS = [
    ("event_queue_mixed.current_ops_per_sec", True),
    ("event_queue_mixed.speedup_vs_seed", True),
    ("event_queue_mixed.speedup_vs_heap", True),
    ("event_queue_horizons.uniform.wheel_ops_per_sec", True),
    ("event_queue_horizons.clustered.wheel_ops_per_sec", True),
    ("event_queue_horizons.bimodal.wheel_ops_per_sec", True),
    ("event_queue_horizons.uniform.speedup_vs_heap", True),
    ("event_queue_horizons.clustered.speedup_vs_heap", True),
    ("event_queue_horizons.bimodal.speedup_vs_heap", True),
    ("sweep_end_to_end.events_per_sec", True),
]

# Absolute-slack metrics: candidate must be <= baseline + slack.
ALLOC_METRICS = [
    "event_queue_horizons.uniform.wheel_allocs_per_op",
    "event_queue_horizons.clustered.wheel_allocs_per_op",
    "event_queue_horizons.bimodal.wheel_allocs_per_op",
]
ALLOC_SLACK = 0.001


def lookup(doc, dotted):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline",
                        help="committed BENCH_micro.json")
    parser.add_argument("--candidate",
                        help="freshly generated BENCH_micro.json")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional regression (default 0.15)")
    parser.add_argument("--min-clustered-speedup", type=float, default=1.8,
                        help="hard floor for clustered speedup vs the "
                             "4-ary heap (default 1.8)")
    parser.add_argument("--fleet-sweep",
                        help="BENCH_sweep.json from bench/fleet_scale; "
                             "enables the fleet events/sec floor")
    parser.add_argument("--fleet-prefix", default="fleet_t1024",
                        help="per-scenario name prefix the fleet floor "
                             "applies to (default fleet_t1024)")
    parser.add_argument("--min-fleet-events-per-sec", type=float,
                        default=50000.0,
                        help="hard events/sec floor for each matching "
                             "fleet scenario (default 50000)")
    args = parser.parse_args()

    if bool(args.baseline) != bool(args.candidate):
        parser.error("--baseline and --candidate must be given together")
    if not args.baseline and not args.fleet_sweep:
        parser.error("nothing to gate: pass --baseline/--candidate "
                     "and/or --fleet-sweep")

    failures = []
    skipped = []

    baseline = {}
    candidate = {}
    if args.baseline:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.candidate) as f:
            candidate = json.load(f)

    for dotted, higher_is_better in (RELATIVE_METRICS if args.baseline
                                     else []):
        base = lookup(baseline, dotted)
        cand = lookup(candidate, dotted)
        if base is None or cand is None:
            skipped.append(dotted)
            continue
        if higher_is_better:
            floor = base * (1.0 - args.tolerance)
            ok = cand >= floor
            direction = ">="
            bound = floor
        else:
            ceil = base * (1.0 + args.tolerance)
            ok = cand <= ceil
            direction = "<="
            bound = ceil
        status = "ok  " if ok else "FAIL"
        print(f"{status} {dotted}: baseline {base:.3f}, "
              f"candidate {cand:.3f} (need {direction} {bound:.3f})")
        if not ok:
            failures.append(dotted)

    alloc_counting = candidate.get("alloc_counting", False) and \
        baseline.get("alloc_counting", False)
    for dotted in ALLOC_METRICS if args.baseline else []:
        base = lookup(baseline, dotted)
        cand = lookup(candidate, dotted)
        if not alloc_counting or base is None or cand is None:
            skipped.append(dotted)
            continue
        ceil = base + ALLOC_SLACK
        ok = cand <= ceil
        status = "ok  " if ok else "FAIL"
        print(f"{status} {dotted}: baseline {base:.6f}, "
              f"candidate {cand:.6f} (need <= {ceil:.6f})")
        if not ok:
            failures.append(dotted)

    if args.baseline:
        clustered = lookup(candidate,
                           "event_queue_horizons.clustered.speedup_vs_heap")
        if clustered is None:
            skipped.append("clustered speedup floor")
        else:
            ok = clustered >= args.min_clustered_speedup
            status = "ok  " if ok else "FAIL"
            print(f"{status} clustered speedup floor: {clustered:.3f} "
                  f"(need >= {args.min_clustered_speedup:.3f})")
            if not ok:
                failures.append("clustered speedup floor")

    if args.fleet_sweep:
        with open(args.fleet_sweep) as f:
            sweep = json.load(f)
        matched = [p for p in sweep.get("per_scenario", [])
                   if p.get("name", "").startswith(args.fleet_prefix)]
        if not matched:
            print(f"FAIL fleet floor: no per_scenario entries match "
                  f"prefix '{args.fleet_prefix}' in {args.fleet_sweep}")
            failures.append("fleet scenarios present")
        for prof in matched:
            name = prof["name"]
            eps = prof.get("events_per_sec", 0)
            ok = eps >= args.min_fleet_events_per_sec
            status = "ok  " if ok else "FAIL"
            print(f"{status} fleet events/sec floor: {name} {eps:.0f} "
                  f"(need >= {args.min_fleet_events_per_sec:.0f})")
            if not ok:
                failures.append(f"fleet floor {name}")

    for dotted in skipped:
        print(f"skip {dotted}: missing in baseline or candidate")

    if failures:
        print(f"\nperf gate FAILED: {len(failures)} metric(s) regressed "
              f"beyond tolerance: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
