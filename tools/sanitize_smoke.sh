#!/bin/sh
# Configure an ASan+UBSan build of the simulator and run the smoke
# target (quickstart example + a fault-injected CLI scenario).
#
# Usage: tools/sanitize_smoke.sh [build-dir]   (default: build-asan)
set -eu

BUILD_DIR="${1:-build-asan}"
SRC_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"

cmake -S "$SRC_DIR" -B "$BUILD_DIR" -DISOL_SANITIZE=ON
cmake --build "$BUILD_DIR" -j
cmake --build "$BUILD_DIR" --target smoke
echo "sanitize_smoke: OK"
