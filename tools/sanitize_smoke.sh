#!/bin/sh
# Sanitizer smoke for the simulator:
#   1. ASan+UBSan build: quickstart example + fault-injected CLI
#      scenario (the `smoke` target), an isol_lint pass over the tree
#      (so the lint tool itself runs sanitized), a short isol_fuzz
#      campaign with runtime invariants on, and the D5 degraded-tenant
#      study with ISOL_CHECK_INVARIANTS=1 — faults, adversaries and the
#      invariant hooks all under the sanitizer.
#   2. TSan build: the sweep-engine determinism tests and the fig5
#      bench with 4 worker threads, the configuration that exercises
#      the shared-nothing worker pool hardest.
#
# Usage: tools/sanitize_smoke.sh [asan-build-dir] [tsan-build-dir]
#        (defaults: build-asan build-tsan)
set -eu

ASAN_DIR="${1:-build-asan}"
TSAN_DIR="${2:-build-tsan}"
SRC_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"

echo "== ASan/UBSan =="
cmake -S "$SRC_DIR" -B "$ASAN_DIR" -DISOL_SANITIZE=address
cmake --build "$ASAN_DIR" -j
cmake --build "$ASAN_DIR" --target smoke
if ! "$ASAN_DIR/tools/isol_lint/isol_lint" --root "$SRC_DIR" \
        --rules D,P,U --report-unused-suppressions; then
    echo "sanitize_smoke: isol_lint found violations (or stale" \
        "suppressions); failing the smoke" >&2
    exit 1
fi
"$ASAN_DIR/tools/isol_fuzz/isol_fuzz" --seeds 16 --jobs 4 \
    --check-invariants
"$ASAN_DIR/tools/isol_fuzz/isol_fuzz" --seeds 2 --jobs 1 \
    --mutate bucket --check-invariants --expect-violations
ISOL_CHECK_INVARIANTS=1 "$ASAN_DIR/examples/degraded_tenant"

echo "== TSan =="
cmake -S "$SRC_DIR" -B "$TSAN_DIR" -DISOL_SANITIZE=thread
cmake --build "$TSAN_DIR" -j --target test_sweep
cmake --build "$TSAN_DIR" -j --target fig5_fairness
ISOL_JOBS=4 "$TSAN_DIR/tests/test_sweep"
(cd "$TSAN_DIR" && ISOL_BENCH_QUICK=1 ./bench/fig5_fairness --jobs 4)

echo "sanitize_smoke: OK"
